package serve

// This file is the exported peer surface for the router tier
// (internal/proxy): just enough frame and request-shape knowledge to
// forward protocol traffic without re-implementing the codecs. The
// proxy peeks each request frame for its routing key (the tenant ID),
// relays the bytes verbatim to the chosen backend, and uses the Append*
// helpers to answer the few requests it must handle itself (fleet-wide
// stats, ping, and routing errors).

import (
	"fmt"
	"io"

	"repro/internal/snap"
)

// ReqKind classifies a peeked request frame for routing.
type ReqKind int

const (
	// ReqTenant is a request addressed to one tenant; route it to the
	// backend owning PeekInfo.Tenant.
	ReqTenant ReqKind = iota
	// ReqStatsAll is a stats request for every tenant ("" tenant); a
	// router must fan it out and merge the rows.
	ReqStatsAll
	// ReqPing is a liveness probe; a router answers for the fleet.
	ReqPing
	// ReqDuraStats is a durability-counter request (protocol v6); a
	// router fans it out and answers with summed totals plus a
	// per-backend breakdown.
	ReqDuraStats
)

// PeekInfo describes one request frame without consuming it: enough
// for a router to pick a backend, echo a tagged envelope on responses
// it generates itself, and decide whether the frame mutates tenant
// state (and so must be teed to a warm standby).
type PeekInfo struct {
	// Tagged reports a protocol-v2 pipelining envelope; Tag is its tag,
	// which every response — including router-generated errors — must
	// echo.
	Tagged bool
	// Tag is the envelope's request tag (meaningful only when Tagged).
	Tag uint64
	// Kind classifies the request for routing.
	Kind ReqKind
	// Tenant is the routing key: the tenant the request addresses
	// (meaningful only for ReqTenant).
	Tenant string
	// Extended distinguishes the v3 extended stats command from the
	// legacy one, so a router answering a fan-out picks the right
	// response shape.
	Extended bool
	// Mutating reports a request that advances tenant state (open,
	// submit, submit-batch, drain, close) — the set a warm-standby tee
	// must replicate. Read-only commands and the migration pair are
	// excluded: migration is the router's own operation.
	Mutating bool
}

// PeekRequest classifies one request frame body. It never panics,
// whatever the bytes; a frame it cannot classify (truncated header
// fields, unknown type) is a protocol error the caller should surface
// to the client before closing the connection.
func PeekRequest(body []byte) (PeekInfo, error) {
	var info PeekInfo
	d := snap.NewDecoder(body)
	typ := d.Uint64()
	if d.Err() != nil {
		return info, fmt.Errorf("serve: truncated message type")
	}
	if typ == msgTagged {
		info.Tagged = true
		info.Tag = d.Uint64()
		typ = d.Uint64()
		if d.Err() != nil {
			return info, fmt.Errorf("serve: truncated tagged envelope")
		}
		if typ == msgTagged {
			return info, fmt.Errorf("serve: nested tagged envelope")
		}
	}
	switch typ {
	case msgOpen, msgRestore:
		d.Int() // version
		info.Tenant = d.String()
		info.Mutating = typ == msgOpen
	case msgSubmit, msgSubmitBatch:
		info.Tenant = d.String()
		info.Mutating = true
	case msgDrain, msgCloseTenant:
		info.Tenant = d.String()
		info.Mutating = true
	case msgResult, msgSnapshot, msgRelease:
		info.Tenant = d.String()
	case msgStats, msgStatsEx:
		info.Extended = typ == msgStatsEx
		info.Tenant = d.String()
		if info.Tenant == "" {
			info.Kind = ReqStatsAll
		}
	case msgPing:
		info.Kind = ReqPing
	case msgDuraStats:
		info.Kind = ReqDuraStats
	default:
		return info, fmt.Errorf("serve: unknown message type %d", typ)
	}
	if d.Err() != nil {
		return info, fmt.Errorf("serve: truncated request header: %w", d.Err())
	}
	return info, nil
}

// WriteFrame sends one length-prefixed frame — the exported framing
// entry point for peers outside this package (the proxy relay).
func WriteFrame(w io.Writer, body []byte) error { return writeFrame(w, body) }

// ReadFrame reads one frame body, reusing buf when it is large enough.
// It returns io.EOF only on a clean end of stream.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }

// appendEnvelope echoes a tagged request's envelope onto a response a
// router generates itself.
func appendEnvelope(e *snap.Encoder, info PeekInfo) {
	if info.Tagged {
		e.Uint64(msgTagged)
		e.Uint64(info.Tag)
	}
}

// AppendStatsResponse encodes a stats response for the rows a router
// merged from its backends, in the shape the peeked request asked for
// (legacy or extended) and under its tagged envelope if any.
func AppendStatsResponse(e *snap.Encoder, info PeekInfo, rows []TenantStats) {
	appendEnvelope(e, info)
	if info.Extended {
		encodeStatsRespEx(e, rows)
	} else {
		encodeStatsResp(e, rows)
	}
}

// AppendPingResponse encodes a ping response (fleet-wide draining flag
// and tenant total) under the request's tagged envelope if any.
func AppendPingResponse(e *snap.Encoder, info PeekInfo, draining bool, tenants int) {
	appendEnvelope(e, info)
	e.Uint64(msgPing)
	e.Bool(draining)
	e.Int(tenants)
}

// AppendDuraStatsResponse encodes a durability-stats response under the
// request's tagged envelope if any — the router's answer to a fan-out,
// with st carrying the fleet-summed counters and the per-backend rows
// in st.Backends.
func AppendDuraStatsResponse(e *snap.Encoder, info PeekInfo, st DuraStats) {
	appendEnvelope(e, info)
	st.encode(e) // encode writes the message type itself
}

// AppendErrorResponse encodes a non-retryable bad-request error under
// the request's tagged envelope if any — the router's answer to a frame
// it cannot classify or route.
func AppendErrorResponse(e *snap.Encoder, info PeekInfo, msg string) {
	appendEnvelope(e, info)
	(&errResp{Code: codeBadRequest, Msg: msg}).encode(e)
}

// AppendUnavailableResponse encodes a retryable draining error under
// the request's tagged envelope if any — the router's answer while a
// tenant's backend is unreachable or its migration is in flight; a
// well-behaved client (the load generator) backs off and retries.
func AppendUnavailableResponse(e *snap.Encoder, info PeekInfo, msg string) {
	appendEnvelope(e, info)
	(&errResp{Code: codeDraining, Msg: msg}).encode(e)
}
