package serve

import (
	"fmt"
	"sort"

	"repro/internal/bdr"
)

// This file is the cross-tenant allocation layer: the policy a shard
// worker consults to decide which backlogged tenant to serve next. The
// per-tenant layer (sched.Stream + its policy) bounds delay *inside* a
// stream; the allocator bounds how long admitted round ticks wait
// *between* streams sharing a worker — the variable-processor cup game
// of Kuszmaul–Narayanan, with Chekuri–Moseley's maximum delay factor as
// the cross-tenant objective. See docs/SCHEDULING.md for the model.

// TenantLoad is the scheduling signal one backlogged tenant presents to
// an Allocator: its live backlog, the tightest bound in its delay menu,
// its provisioned weight, and the weighted service it is currently owed.
type TenantLoad struct {
	// Queued is the tenant's backlog: admitted-but-unapplied round ticks.
	// Every load handed to Pick has Queued > 0.
	Queued int
	// MinDelay is the tightest delay bound in the tenant's menu (≥ 1).
	// Queued/MinDelay is the tenant's delay factor: the fraction of its
	// tightest bound the serve-layer backlog alone consumes.
	MinDelay int
	// Weight is the tenant's provisioned service weight (≥ 1): a
	// weight-2 tenant is entitled to twice a weight-1 tenant's share of
	// worker capacity while both are backlogged.
	Weight int
	// Deficit is the weighted service the tenant is owed, maintained by
	// the shard worker across passes: while a tenant is backlogged it
	// accrues credit in proportion to its weight and pays one unit per
	// round served, so its long-run service share converges to
	// Weight/ΣWeights. Positive = underserved.
	Deficit float64
	// Budget, when positive, caps the rounds this tenant may be served
	// in the current pass. It is set by the BDR fractional-share
	// controller (Config.BDR) from the tenant's share of the pass
	// budget; 0 leaves the tenant uncapped (no controller, or an eager
	// unbounded pass).
	Budget int
}

// DelayFactor is Queued/MinDelay: how much of the tenant's tightest
// delay bound its serve-layer backlog alone would consume. At 1.0 a
// round admitted now waits, in stream rounds, as long as the tightest
// bound permits end to end.
func (l TenantLoad) DelayFactor() float64 {
	return float64(l.Queued) / float64(max(l.MinDelay, 1))
}

// Allocator picks which backlogged tenant a shard worker serves next.
// Implementations must be deterministic (ties broken by index) — the
// starvation tests and the bit-identical verification harness rely on
// reproducible decisions — and are called from exactly one worker
// goroutine per shard, so they need no internal locking.
type Allocator interface {
	// Name reports the spec string NewAllocator resolves.
	Name() string
	// Pick returns the index into loads of the tenant to serve next.
	// loads is never empty and every entry has Queued > 0.
	Pick(loads []TenantLoad) int
	// Quantum bounds the rounds applied for the picked tenant before the
	// allocator is consulted again; 0 or negative means drain the
	// tenant's current backlog completely before moving on.
	Quantum(l TenantLoad) int
}

// DefaultAllocator is the allocator spec Config.Allocator "" selects.
const DefaultAllocator = "wdrr"

// AllocatorNames lists the specs NewAllocator accepts, sorted.
func AllocatorNames() []string {
	names := []string{"fifo", "wdrr"}
	sort.Strings(names)
	return names
}

// NewAllocator builds a cross-tenant allocator by spec:
//
//   - "wdrr" (the default): weighted deficit round-robin with priority
//     escalation. When any backlogged tenant's delay factor reaches
//     escalation, service is restricted to the tenants at or past that
//     threshold — the ones nearest their bound — and within the eligible
//     set the most underserved (largest deficit) tenant wins, weights
//     respected. Each pick serves at most quantum×Weight rounds, so one
//     deep queue can never hold a worker while peers wait.
//   - "fifo": the legacy poking order — scan order, each tenant drained
//     completely before the next. Kept as the baseline the skewed
//     benchmark and the starvation test measure against.
//
// quantum ≤ 0 and escalation 0 select the defaults (8 rounds and 0.5);
// escalation < 0 disables escalation entirely.
func NewAllocator(spec string, quantum int, escalation float64) (Allocator, error) {
	switch spec {
	case "", "wdrr":
		if quantum <= 0 {
			quantum = 8
		}
		if escalation == 0 {
			escalation = 0.5
		}
		return &wdrrAllocator{quantum: quantum, escalation: escalation}, nil
	case "fifo":
		return fifoAllocator{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown allocator %q (have %v)", spec, AllocatorNames())
	}
}

// fifoAllocator reproduces the pre-allocator worker behavior: serve
// backlogged tenants in scan order and drain each one fully before
// moving on. A deep queue therefore holds the worker for its entire
// backlog — the starvation mode the skewed benchmark quantifies.
type fifoAllocator struct{}

func (fifoAllocator) Name() string                { return "fifo" }
func (fifoAllocator) Pick(loads []TenantLoad) int { return 0 }
func (fifoAllocator) Quantum(TenantLoad) int      { return 0 }

// wdrrAllocator is weighted deficit round-robin with delay-factor
// escalation, the default cross-tenant policy.
type wdrrAllocator struct {
	quantum    int     // base rounds per pick, scaled by the tenant's weight
	escalation float64 // delay factor at which a tenant enters the priority set
}

func (a *wdrrAllocator) Name() string { return "wdrr" }

// Pick restricts service to the escalated set (delay factor ≥ the
// threshold) when it is non-empty, then takes the largest deficit;
// ties go to the lowest index so decisions are deterministic.
func (a *wdrrAllocator) Pick(loads []TenantLoad) int {
	escalated := false
	if a.escalation >= 0 {
		for i := range loads {
			if loads[i].DelayFactor() >= a.escalation {
				escalated = true
				break
			}
		}
	}
	best := -1
	for i := range loads {
		if escalated && loads[i].DelayFactor() < a.escalation {
			continue
		}
		if best < 0 || loads[i].Deficit > loads[best].Deficit {
			best = i
		}
	}
	return best
}

func (a *wdrrAllocator) Quantum(l TenantLoad) int {
	return a.quantum * max(l.Weight, 1)
}

// passState is one shard worker's reusable scratch for servePass, so a
// steady-state pass allocates nothing.
type passState struct {
	scratch []*tenant
	live    []*tenant
	loads   []TenantLoad
	// BDR controller scratch (Config.BDR): the demand/share vectors for
	// the fractional-share computation, and the pass's initial
	// backlogged set retained for budget-utilization accrual after the
	// pick loop mutates live.
	demands  []bdr.Demand
	shares   []bdr.Share
	initLive []*tenant
}

// servePass runs one allocation pass over a shard: it snapshots the
// backlogged tenants, then repeatedly asks the allocator which one to
// serve next, applying up to one quantum of queued round ticks per pick
// and settling the deficit accounts, until the snapshot backlog is
// drained or the budget is spent. budget 0 means unlimited (the eager
// worker); budget < 0 means one round per backlogged tenant (the paced
// worker), so the aggregate pace matches the pre-allocator behavior
// while the allocator decides the distribution — a budgeted pass is
// exactly the cup game's emptier, with the budget as the processor
// count. Rounds admitted mid-pass are
// not chased — they re-poke the shard and the next pass serves them —
// so a pass always terminates. Checkpoint blobs captured under the
// tenant lock are written here, outside it.
func (s *Server) servePass(sh *shard, ps *passState, budget int) {
	ps.scratch = sh.snapshot(ps.scratch[:0])
	ps.live = ps.live[:0]
	ps.loads = ps.loads[:0]
	for _, t := range ps.scratch {
		if l, ok := t.load(); ok {
			ps.live = append(ps.live, t)
			ps.loads = append(ps.loads, l)
		}
	}
	if budget < 0 {
		budget = len(ps.loads)
	}
	unlimited := budget == 0
	totalApplied := 0
	budgeted := false // a BDR pass with per-tenant budgets assigned
	if s.ctrl != nil && len(ps.loads) > 0 {
		// BDR fractional shares: convert each backlogged tenant's
		// reservation plus measured backlog into this pass's effective
		// weight and service budget. The controller's guarantee clamp
		// means an admitted reservation's share never drops below its
		// rate, whatever the best-effort tenants demand.
		ps.demands = ps.demands[:0]
		for j, t := range ps.live {
			ps.demands = append(ps.demands, bdr.Demand{
				Res: t.res, Backlog: ps.loads[j].Queued, Weight: ps.loads[j].Weight,
			})
		}
		if cap(ps.shares) < len(ps.demands) {
			ps.shares = make([]bdr.Share, len(ps.demands))
		}
		ps.shares = ps.shares[:len(ps.demands)]
		s.ctrl.Shares(ps.demands, budget, ps.shares)
		for j := range ps.loads {
			ps.loads[j].Weight = ps.shares[j].Weight
			ps.loads[j].Budget = ps.shares[j].Budget
		}
		ps.initLive = append(ps.initLive[:0], ps.live...)
		for _, t := range ps.initLive {
			t.passApplied = 0
		}
		budgeted = !unlimited
	}
	for len(ps.loads) > 0 && (unlimited || budget > 0) {
		i := s.alloc.Pick(ps.loads)
		if i < 0 || i >= len(ps.loads) {
			i = 0 // defensive against a misbehaving Allocator
		}
		q := s.alloc.Quantum(ps.loads[i])
		if q <= 0 || q > ps.loads[i].Queued {
			q = ps.loads[i].Queued
		}
		if !unlimited && q > budget {
			q = budget
		}
		if b := ps.loads[i].Budget; b > 0 && q > b {
			q = b
		}
		t := ps.live[i]
		applied, blob, round := t.applyQueued(q, s.cfg.CheckpointEvery)
		if blob != nil {
			if err := t.writeCheckpoint(blob, round); err != nil {
				s.logf("%v", err)
			}
		}
		if !unlimited {
			budget -= applied
		}
		totalApplied += applied
		if s.ctrl != nil {
			t.passApplied += applied
			if ps.loads[i].Budget > 0 {
				ps.loads[i].Budget -= applied
			}
		}
		if applied > 0 {
			// Settle the deficit accounts: every backlogged tenant accrues
			// credit for the rounds just served in proportion to its weight,
			// and the served tenant pays one unit per round — so long-run
			// service shares converge to Weight/ΣWeights while tenants stay
			// backlogged, and an idle tenant accrues nothing.
			var totalW float64
			for j := range ps.loads {
				totalW += float64(max(ps.loads[j].Weight, 1))
			}
			for j := range ps.loads {
				ps.loads[j].Deficit += float64(applied) * float64(max(ps.loads[j].Weight, 1)) / totalW
				ps.live[j].deficit = ps.loads[j].Deficit
			}
			ps.loads[i].Deficit -= float64(applied)
			t.deficit = ps.loads[i].Deficit
		}
		ps.loads[i].Queued -= applied
		budgetSpent := budgeted && ps.loads[i].Budget <= 0
		if ps.loads[i].Queued <= 0 || applied == 0 || budgetSpent {
			// Drained, poisoned/raced empty (applied 0), or out of BDR
			// budget for this pass; either way the tenant leaves this
			// pass. Ordered removal keeps scan order (and with it
			// tie-breaking) deterministic.
			ps.live = append(ps.live[:i], ps.live[i+1:]...)
			ps.loads = append(ps.loads[:i], ps.loads[i+1:]...)
		}
	}
	if s.ctrl != nil && totalApplied > 0 {
		// Accrue budget-utilization accounting: every reserved tenant that
		// was backlogged at the start of the pass earns its guaranteed
		// fraction of the rounds actually served, whether or not the pick
		// loop reached it — a reserved tenant served less than its accrual
		// shows a utilization below 1 in stats-ex.
		for _, t := range ps.initLive {
			if t.res.IsZero() {
				continue
			}
			t.accrueBDR(t.res.Rate/s.ctrl.ShardRate*float64(totalApplied), t.passApplied)
		}
	}
}
