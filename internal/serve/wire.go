// Package serve is the network layer of the repository: a TCP server
// (cmd/rrserved) hosting many independent tenants — each a live
// sched.Stream with its own policy — behind a small length-prefixed
// binary protocol, plus the matching Client used by the load generator
// (cmd/rrload) and by embedders.
//
// # Wire format
//
// Every message travels in a frame: a 4-byte little-endian length
// prefix followed by that many body bytes (at most MaxFrame). The body
// is encoded with internal/snap's deterministic varint codec and starts
// with a varint message type; the remaining fields depend on the type.
// Responses reuse the same framing. A malformed, truncated or oversized
// frame is a protocol error: the reader reports it and the connection
// is closed — never a panic, pinned by FuzzFrameDecode.
//
// Protocol version 2 adds two optional shapes on the same framing: a
// request may be wrapped in a msgTagged envelope (a varint tag echoed
// on its response, so many requests can be pipelined per connection and
// acknowledged out of order or coalesced into one flush), and
// msgSubmitBatch vectors K consecutive round ticks for one tenant into
// one frame with a per-round admitted-prefix acknowledgement. Version 3
// adds an optional trailing service weight to the open request and the
// msgStatsEx command, whose rows extend the legacy stats row with the
// cross-tenant scheduling fields (weight, delay factor, service share).
// Version 4 adds the fleet-migration pair: msgRelease hands a tenant's
// state out of a server (drain the admission queue, snapshot, leave a
// tombstone) and msgRestore installs a released snapshot on another
// server, so a router tier (internal/proxy) can move a live tenant
// between backends without losing a round. Version 5 adds msgDuraStats,
// a bare request reporting the durability backend's counters (appends,
// bytes, fsyncs, and the group-commit log's deltas, rotations,
// compactions and segment count); it is answered by the server a client
// dialed directly, and since version 6 the proxy tier relays it as a
// fan-out with per-backend rows. Version 6 adds bounded-delay admission
// control (docs/SCHEDULING.md "Admission"): the open and restore
// requests may append an optional (rate, delay) reservation, an
// infeasible reservation is rejected with a typed admission error
// carrying the shard's residual capacity, stats-ex rows append the
// reservation and its budget utilization, and the durability response
// may append per-backend rows when answered by a proxy. Every v6 field
// is an optional trailing extension encoded only when present, so
// version-1 through version-5 peers never see any of them and keep
// working unchanged: the legacy msgStats request and response are
// byte-for-byte identical across versions.
//
// # Rounds, sequence numbers, and exactly-once ingest
//
// One Submit carries the arrivals of exactly one round tick for one
// tenant and names its position in the tenant's round sequence. The
// server accepts a submit only when its sequence number equals the
// tenant's next expected round (rounds applied + rounds queued), so a
// client that resubmits after a lost acknowledgement, a reconnect or a
// server restart can never duplicate or reorder a round: stale submits
// are rejected with a BadSeqError carrying the expected sequence, and
// the client simply resumes from there. Together with per-tenant
// checkpointing this gives exactly-once round application end to end —
// the property the bit-identical integration tests pin.
//
// See docs/SERVER.md for the full protocol and lifecycle description.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sched"
	"repro/internal/snap"
)

// ProtocolVersion is carried in every open request. Version 2 added
// tagged frames (pipelining) and vectored submit batches; version 3
// added the open request's optional tenant weight and the extended
// stats command (msgStatsEx); version 4 added the live-migration pair
// msgRelease/msgRestore used by the proxy tier; version 5 added the
// msgDuraStats durability-counter probe; version 6 added the optional
// (rate, delay) reservation on open/restore, the typed admission
// rejection with residual capacity, the reservation columns on
// stats-ex rows, and the proxy fan-out rows on the durability
// response. The server still accepts older peers, which simply never
// send any of these.
const ProtocolVersion = 6

// MinProtocolVersion is the oldest version the server still speaks.
// Version-1 clients use strict request/response with untagged frames;
// everything they send decodes identically under version 2.
const MinProtocolVersion = 1

// MaxBatch bounds the round ticks one submit-batch frame may carry. It
// keeps a hostile length prefix from forcing a large allocation before
// the batch body is validated, and bounds how long one frame can hold a
// tenant's lock.
const MaxBatch = 1024

// MaxPipeline bounds a client Pipeline's in-flight window. Staying well
// under the server's per-connection response queue plus the kernel
// socket buffers guarantees the reap-when-full client loop can never
// deadlock against a server blocked on writing acknowledgements.
const MaxPipeline = 1024

// MaxFrame bounds a frame body. It must hold the largest legitimate
// message (a stats response for every tenant, a snapshot blob); a
// length prefix beyond it proves a corrupt or hostile peer and closes
// the connection before any allocation is attempted.
const MaxFrame = 1 << 22

// Message types (requests). Responses echo the request's type, except
// for errors which use msgErr.
const (
	msgErr = iota // response-only
	msgOpen
	msgSubmit
	msgStats
	msgResult
	msgDrain
	msgCloseTenant
	msgPing
	msgSnapshot
	// msgTagged is the protocol-v2 pipelining envelope: a varint request
	// tag followed by a complete inner message. The response to a tagged
	// request is wrapped the same way with the same tag, so a client may
	// keep many requests in flight and match acknowledgements by tag even
	// if they return out of order or coalesced into one flush.
	msgTagged
	// msgSubmitBatch carries K consecutive round ticks for one tenant in
	// one frame — one length prefix and one syscall amortized over K
	// rounds. Admission is per round and strictly sequential, so the
	// response names the admitted prefix plus the first rejection.
	msgSubmitBatch
	// msgStatsEx (protocol v3) shares msgStats' request shape but answers
	// with extended rows: the legacy fields followed by the cross-tenant
	// scheduling fields (weight, min delay, served rounds, delay factors,
	// service share). The legacy msgStats response is left byte-identical
	// so older clients keep decoding it.
	msgStatsEx
	// msgRestore (protocol v4) installs a previously released tenant
	// snapshot: the open-request fields that describe the tenant's
	// configuration plus the state blob a msgRelease (or msgSnapshot)
	// returned. The server validates the blob against the declared
	// configuration, recreates the tenant at its snapshotted round, and
	// persists the blob as the tenant's first checkpoint, so a migration
	// survives a crash immediately after the flip.
	msgRestore
	// msgRelease (protocol v4) is the source half of a migration: the
	// server applies everything the tenant has queued, snapshots it,
	// removes its durable state, and replaces the tenant with a released
	// tombstone that answers every later command with a retryable
	// draining error. The response carries the tenant's configuration,
	// resume sequence, and state blob — everything msgRestore needs on
	// the target.
	msgRelease
	// msgDuraStats (protocol v5) is a bare request for the server's
	// durability counters: the backend mode plus append/byte/fsync
	// totals, and in log mode the group-commit log's delta, rotation,
	// compaction and live-segment counts. Since protocol v6 the proxy
	// tier relays it as a fan-out: the merged response sums every live
	// backend's counters and appends one labelled row per backend.
	msgDuraStats
)

// DuraStats reports the durability backend's cumulative counters.
// Mode is "log", "files", or "off" (no CheckpointDir). In files mode
// every append pays its own fsync, so Appends == Fsyncs and the
// log-only fields stay zero; in log mode Fsyncs counts group commits,
// which is the number the batching exists to shrink.
type DuraStats struct {
	Mode        string
	Appends     int64
	Bytes       int64
	Fsyncs      int64
	Deltas      int64
	Rotations   int64
	Compactions int64
	Segments    int64
	// Backends carries the per-backend rows of a proxy fan-out
	// (protocol v6): when a DuraStats request is answered by the proxy
	// tier, the top-level counters are the fleet-wide sums (Mode is
	// "mixed" when the backends disagree) and each row names one
	// backend's address with its own counters. A server answering a
	// direct dial leaves it empty, which is also what pre-v6 responses
	// decode to — the field is an optional trailing extension.
	Backends []BackendDuraStats
}

// BackendDuraStats is one backend's row in a proxied DuraStats
// response: the backend's address plus its own counters.
type BackendDuraStats struct {
	// Addr is the backend's dial address as configured on the proxy.
	Addr string
	// DuraStats holds the backend's own counters; its Backends field is
	// always empty (the fan-out is one level deep).
	DuraStats
}

func (s *DuraStats) encode(e *snap.Encoder) {
	e.Uint64(msgDuraStats)
	e.String(s.Mode)
	e.Int64(s.Appends)
	e.Int64(s.Bytes)
	e.Int64(s.Fsyncs)
	e.Int64(s.Deltas)
	e.Int64(s.Rotations)
	e.Int64(s.Compactions)
	e.Int64(s.Segments)
	// Optional trailing per-backend rows (protocol v6): a direct-dial
	// response omits them entirely, staying byte-identical to v5.
	if len(s.Backends) > 0 {
		e.Int(len(s.Backends))
		for i := range s.Backends {
			b := &s.Backends[i]
			e.String(b.Addr)
			e.String(b.Mode)
			e.Int64(b.Appends)
			e.Int64(b.Bytes)
			e.Int64(b.Fsyncs)
			e.Int64(b.Deltas)
			e.Int64(b.Rotations)
			e.Int64(b.Compactions)
			e.Int64(b.Segments)
		}
	}
}

func (s *DuraStats) decode(d *snap.Decoder) {
	s.Mode = d.String()
	s.Appends = d.Int64()
	s.Bytes = d.Int64()
	s.Fsyncs = d.Int64()
	s.Deltas = d.Int64()
	s.Rotations = d.Int64()
	s.Compactions = d.Int64()
	s.Segments = d.Int64()
	s.Backends = nil
	if d.Err() == nil && d.Remaining() > 0 {
		n := d.Len()
		if d.Err() != nil {
			return
		}
		s.Backends = make([]BackendDuraStats, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			var b BackendDuraStats
			b.Addr = d.String()
			b.Mode = d.String()
			b.Appends = d.Int64()
			b.Bytes = d.Int64()
			b.Fsyncs = d.Int64()
			b.Deltas = d.Int64()
			b.Rotations = d.Int64()
			b.Compactions = d.Int64()
			b.Segments = d.Int64()
			if d.Err() != nil {
				return
			}
			s.Backends = append(s.Backends, b)
		}
	}
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("serve: frame body %d bytes exceeds MaxFrame %d", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame body, reusing buf when it is large enough.
// It returns io.EOF only on a clean end of stream (no bytes read).
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("serve: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("serve: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serve: frame body truncated: %w", err)
	}
	return buf, nil
}

// openMsg asks the server to create a tenant, or to re-attach to an
// existing one with a matching configuration.
type openMsg struct {
	Version  int
	Tenant   string
	Policy   string
	N        int
	Speed    int
	Delta    int
	QueueCap int
	Delays   []int
	// Weight is the tenant's cross-tenant service weight (protocol v3,
	// encoded as an optional trailing field: older peers simply end the
	// message before it, which decodes as 0 and is normalized to 1).
	Weight int
	// ResRate/ResDelay are the tenant's BDR reservation (protocol v6,
	// optional trailing pair after Weight; encoded only when ResRate is
	// positive, so an unreserved v6 open stays byte-identical to v5).
	// A positive rate asks the server to admit the tenant iff the
	// shard's supply-bound-function check passes; see docs/SCHEDULING.md.
	ResRate  float64
	ResDelay float64
}

func (m *openMsg) encode(e *snap.Encoder) {
	e.Uint64(msgOpen)
	e.Int(m.Version)
	e.String(m.Tenant)
	e.String(m.Policy)
	e.Int(m.N)
	e.Int(m.Speed)
	e.Int(m.Delta)
	e.Int(m.QueueCap)
	e.Ints(m.Delays)
	e.Int(m.Weight)
	if m.ResRate > 0 {
		e.Float64(m.ResRate)
		e.Float64(m.ResDelay)
	}
}

func (m *openMsg) decode(d *snap.Decoder) {
	m.Version = d.Int()
	m.Tenant = d.String()
	m.Policy = d.String()
	m.N = d.Int()
	m.Speed = d.Int()
	m.Delta = d.Int()
	m.QueueCap = d.Int()
	m.Delays = d.Ints()
	m.Weight = 0
	if d.Err() == nil && d.Remaining() > 0 {
		m.Weight = d.Int()
	}
	m.ResRate, m.ResDelay = 0, 0
	if d.Err() == nil && d.Remaining() > 0 {
		m.ResRate = d.Float64()
		m.ResDelay = d.Float64()
	}
}

// openResp acknowledges an open: NextSeq is the sequence number the
// next Submit must carry (0 for a fresh tenant; the resume point for a
// recovered or re-attached one).
type openResp struct {
	NextSeq int
	Resumed bool
}

func (m *openResp) encode(e *snap.Encoder) {
	e.Uint64(msgOpen)
	e.Int(m.NextSeq)
	e.Bool(m.Resumed)
}

func (m *openResp) decode(d *snap.Decoder) {
	m.NextSeq = d.Int()
	m.Resumed = d.Bool()
}

// submitMsg carries one round tick of arrivals for one tenant. Seq must
// equal the tenant's next expected round sequence.
type submitMsg struct {
	Tenant   string
	Seq      int
	Arrivals sched.Request
}

func (m *submitMsg) encode(e *snap.Encoder) {
	e.Uint64(msgSubmit)
	e.String(m.Tenant)
	e.Int(m.Seq)
	e.Int(len(m.Arrivals))
	for _, b := range m.Arrivals {
		e.Int(int(b.Color))
		e.Int(b.Count)
	}
}

// decode reuses m.Arrivals' backing array, so a long-lived handler
// reaches a steady state without per-frame batch allocations.
func (m *submitMsg) decode(d *snap.Decoder) {
	m.Tenant = d.StringCached(m.Tenant)
	m.Seq = d.Int()
	n := d.Len() // each batch takes ≥ 2 bytes, so Len's bound is safe
	m.Arrivals = m.Arrivals[:0]
	for i := 0; i < n; i++ {
		c, cnt := d.Int(), d.Int()
		if d.Err() != nil {
			return
		}
		m.Arrivals = append(m.Arrivals, sched.Batch{Color: sched.Color(c), Count: cnt})
	}
}

// submitResp acknowledges admission of one round tick: the submit is
// queued (QueueDepth deep) and will be applied by the tenant's shard
// worker; Round is the number of rounds applied so far.
type submitResp struct {
	Round      int
	QueueDepth int
}

func (m *submitResp) encode(e *snap.Encoder) {
	e.Uint64(msgSubmit)
	e.Int(m.Round)
	e.Int(m.QueueDepth)
}

func (m *submitResp) decode(d *snap.Decoder) {
	m.Round = d.Int()
	m.QueueDepth = d.Int()
}

// batchMsg carries Ticks[i] as the round tick at sequence Seq+i — K
// consecutive rounds for one tenant in one frame.
type batchMsg struct {
	Tenant string
	Seq    int
	Ticks  []sched.Request
}

func (m *batchMsg) encode(e *snap.Encoder) {
	e.Uint64(msgSubmitBatch)
	e.String(m.Tenant)
	e.Int(m.Seq)
	e.Int(len(m.Ticks))
	for _, tick := range m.Ticks {
		e.Int(len(tick))
		for _, b := range tick {
			e.Int(int(b.Color))
			e.Int(b.Count)
		}
	}
}

// decode reuses m.Ticks and each tick's backing array across frames, so
// a long-lived handler decodes batches without steady-state allocations.
// A malformed body leaves the decoder in its error state and the caller
// must not admit anything — batch rejection is atomic.
func (m *batchMsg) decode(d *snap.Decoder) {
	m.Tenant = d.StringCached(m.Tenant)
	m.Seq = d.Int()
	k := d.Len() // each round tick takes ≥ 1 byte, so Len's bound holds
	if d.Err() != nil {
		return
	}
	if k > MaxBatch {
		d.Failf("serve: batch of %d rounds exceeds MaxBatch %d", k, MaxBatch)
		return
	}
	if k > cap(m.Ticks) {
		m.Ticks = append(m.Ticks[:cap(m.Ticks)], make([]sched.Request, k-cap(m.Ticks))...)
	}
	m.Ticks = m.Ticks[:k]
	for i := range m.Ticks {
		n := d.Len() // each batch takes ≥ 2 bytes
		tick := m.Ticks[i][:0]
		for j := 0; j < n; j++ {
			c, cnt := d.Int(), d.Int()
			if d.Err() != nil {
				return
			}
			tick = append(tick, sched.Batch{Color: sched.Color(c), Count: cnt})
		}
		m.Ticks[i] = tick
	}
}

// batchResp acknowledges a submit batch: Admitted rounds (always a
// prefix — admission is sequential) were queued, Round/QueueDepth
// describe the tenant afterwards, and when Admitted < the batch size,
// Err carries the rejection of round Seq+Admitted exactly as a
// standalone submit of that round would have reported it.
type batchResp struct {
	Admitted   int
	Round      int
	QueueDepth int
	Err        *errResp // nil when the whole batch was admitted
}

func (m *batchResp) encode(e *snap.Encoder) {
	e.Uint64(msgSubmitBatch)
	e.Int(m.Admitted)
	e.Int(m.Round)
	e.Int(m.QueueDepth)
	e.Bool(m.Err != nil)
	if m.Err != nil {
		e.Int(m.Err.Code)
		e.Int(m.Err.Expected)
		e.String(m.Err.Msg)
	}
}

func (m *batchResp) decode(d *snap.Decoder) {
	m.Admitted = d.Int()
	m.Round = d.Int()
	m.QueueDepth = d.Int()
	m.Err = nil
	if d.Bool() {
		m.Err = &errResp{Code: d.Int(), Expected: d.Int(), Msg: d.String()}
	}
}

// restoreMsg installs a released tenant snapshot on this server: the
// open-request configuration fields plus the state blob a release (or
// snapshot) returned. The declared configuration must match the one
// embedded in the blob — a mismatch proves operator error and is
// rejected before any state is created.
type restoreMsg struct {
	Version  int
	Tenant   string
	Policy   string
	N        int
	Speed    int
	Delta    int
	QueueCap int
	Delays   []int
	Weight   int
	Blob     []byte
	// ResRate/ResDelay carry the migrating tenant's BDR reservation
	// (protocol v6, optional trailing pair after the blob; encoded only
	// when ResRate is positive). The target re-runs admission against
	// its own shard capacity, so a migration can never overcommit it.
	ResRate  float64
	ResDelay float64
}

func (m *restoreMsg) encode(e *snap.Encoder) {
	e.Uint64(msgRestore)
	e.Int(m.Version)
	e.String(m.Tenant)
	e.String(m.Policy)
	e.Int(m.N)
	e.Int(m.Speed)
	e.Int(m.Delta)
	e.Int(m.QueueCap)
	e.Ints(m.Delays)
	e.Int(m.Weight)
	e.Blob(m.Blob)
	if m.ResRate > 0 {
		e.Float64(m.ResRate)
		e.Float64(m.ResDelay)
	}
}

func (m *restoreMsg) decode(d *snap.Decoder) {
	m.Version = d.Int()
	m.Tenant = d.String()
	m.Policy = d.String()
	m.N = d.Int()
	m.Speed = d.Int()
	m.Delta = d.Int()
	m.QueueCap = d.Int()
	m.Delays = d.Ints()
	m.Weight = d.Int()
	m.Blob = d.Blob()
	m.ResRate, m.ResDelay = 0, 0
	if d.Err() == nil && d.Remaining() > 0 {
		m.ResRate = d.Float64()
		m.ResDelay = d.Float64()
	}
}

// restoreResp acknowledges a restore: NextSeq is the sequence number
// the tenant's next Submit must carry on this server.
type restoreResp struct {
	NextSeq int
}

func (m *restoreResp) encode(e *snap.Encoder) {
	e.Uint64(msgRestore)
	e.Int(m.NextSeq)
}

func (m *restoreResp) decode(d *snap.Decoder) {
	m.NextSeq = d.Int()
}

// releaseResp carries everything a restore on the migration target
// needs: the tenant's configuration as opened, the resume sequence
// (rounds applied — the released queue is always flushed first, so no
// queued rounds are in flight), and the state blob.
type releaseResp struct {
	Policy   string
	N        int
	Speed    int
	Delta    int
	QueueCap int
	Delays   []int
	Weight   int
	NextSeq  int
	Blob     []byte
	// ResRate/ResDelay hand the released tenant's BDR reservation to
	// the migration target (protocol v6, optional trailing pair after
	// the blob; encoded only when ResRate is positive), so the restore
	// request can re-declare it for admission there.
	ResRate  float64
	ResDelay float64
}

func (m *releaseResp) encode(e *snap.Encoder) {
	e.Uint64(msgRelease)
	e.String(m.Policy)
	e.Int(m.N)
	e.Int(m.Speed)
	e.Int(m.Delta)
	e.Int(m.QueueCap)
	e.Ints(m.Delays)
	e.Int(m.Weight)
	e.Int(m.NextSeq)
	e.Blob(m.Blob)
	if m.ResRate > 0 {
		e.Float64(m.ResRate)
		e.Float64(m.ResDelay)
	}
}

func (m *releaseResp) decode(d *snap.Decoder) {
	m.Policy = d.String()
	m.N = d.Int()
	m.Speed = d.Int()
	m.Delta = d.Int()
	m.QueueCap = d.Int()
	m.Delays = d.Ints()
	m.Weight = d.Int()
	m.NextSeq = d.Int()
	m.Blob = d.Blob()
	m.ResRate, m.ResDelay = 0, 0
	if d.Err() == nil && d.Remaining() > 0 {
		m.ResRate = d.Float64()
		m.ResDelay = d.Float64()
	}
}

// tenantMsg is the shape shared by the single-tenant commands (stats,
// result, drain, close, snapshot): a type plus the tenant ID ("" asks
// stats for every tenant).
type tenantMsg struct {
	Type   uint64
	Tenant string
}

func (m *tenantMsg) encode(e *snap.Encoder) {
	e.Uint64(m.Type)
	e.String(m.Tenant)
}

func (m *tenantMsg) decode(d *snap.Decoder) {
	m.Tenant = d.String()
}

// TenantStats is one tenant's row of the stats command: scheduling
// totals from the live stream, admission-control counters, and the
// MetricsSink's backlog high-water mark.
type TenantStats struct {
	// ID and Policy identify the tenant and its policy (Policy is the
	// policy's Name, not the spec it was opened with).
	ID     string `json:"id"`
	Policy string `json:"policy"`
	// Round counts rounds applied; NextSeq = Round + QueueDepth is the
	// sequence the next Submit must carry.
	Round   int `json:"round"`
	NextSeq int `json:"next_seq"`
	// Pending counts jobs pending inside the stream; QueueDepth counts
	// admitted round ticks not yet applied (bounded by QueueCap).
	Pending    int `json:"pending"`
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Scheduling totals (cumulative since the stream started, surviving
	// checkpoint/restart).
	Executed     int   `json:"executed"`
	Dropped      int   `json:"dropped"`
	Reconfigs    int   `json:"reconfigs"`
	CostReconfig int64 `json:"cost_reconfig"`
	CostDrop     int64 `json:"cost_drop"`
	// MaxPending is the deepest end-of-round backlog the MetricsSink saw
	// (since this process started — sinks are not checkpointed).
	MaxPending int `json:"max_pending"`
	// Admission-control counters (since this process started).
	Overloads   int64 `json:"overloads"`
	BadSeqs     int64 `json:"bad_seqs"`
	Checkpoints int64 `json:"checkpoints"`
	// Cross-tenant scheduling fields (protocol v3, carried only by the
	// extended stats command — a legacy msgStats row leaves them zero).
	//
	// Weight is the tenant's provisioned service weight; MinDelay the
	// tightest bound in its delay menu. DelayFactor = QueueDepth/MinDelay
	// is the live backlog pressure signal the allocator escalates on, and
	// MaxDelayFactor its high-water mark sampled at admission (since this
	// process started). ServedRounds counts round ticks applied by shard
	// workers; ServiceShare is this tenant's fraction of every round the
	// server has applied. See docs/SCHEDULING.md.
	Weight         int     `json:"weight,omitempty"`
	MinDelay       int     `json:"min_delay,omitempty"`
	ServedRounds   int64   `json:"served_rounds,omitempty"`
	DelayFactor    float64 `json:"delay_factor,omitempty"`
	MaxDelayFactor float64 `json:"max_delay_factor,omitempty"`
	ServiceShare   float64 `json:"service_share,omitempty"`
	// BDR admission fields (protocol v6, carried only by the extended
	// stats command). ReservedRate/ReservedDelay are the tenant's
	// admitted reservation (zero for a best-effort tenant).
	// BudgetUtilization is served rounds over the service the
	// reservation accrued across the passes the tenant was backlogged
	// in — below 1 means the tenant is drawing less than its guarantee,
	// above 1 that it is also consuming slack. See docs/SCHEDULING.md.
	ReservedRate      float64 `json:"reserved_rate,omitempty"`
	ReservedDelay     float64 `json:"reserved_delay,omitempty"`
	BudgetUtilization float64 `json:"budget_utilization,omitempty"`
}

func (s *TenantStats) encode(e *snap.Encoder) {
	e.String(s.ID)
	e.String(s.Policy)
	e.Int(s.Round)
	e.Int(s.NextSeq)
	e.Int(s.Pending)
	e.Int(s.QueueDepth)
	e.Int(s.QueueCap)
	e.Int(s.Executed)
	e.Int(s.Dropped)
	e.Int(s.Reconfigs)
	e.Int64(s.CostReconfig)
	e.Int64(s.CostDrop)
	e.Int(s.MaxPending)
	e.Int64(s.Overloads)
	e.Int64(s.BadSeqs)
	e.Int64(s.Checkpoints)
}

func (s *TenantStats) decode(d *snap.Decoder) {
	s.ID = d.String()
	s.Policy = d.String()
	s.Round = d.Int()
	s.NextSeq = d.Int()
	s.Pending = d.Int()
	s.QueueDepth = d.Int()
	s.QueueCap = d.Int()
	s.Executed = d.Int()
	s.Dropped = d.Int()
	s.Reconfigs = d.Int()
	s.CostReconfig = d.Int64()
	s.CostDrop = d.Int64()
	s.MaxPending = d.Int()
	s.Overloads = d.Int64()
	s.BadSeqs = d.Int64()
	s.Checkpoints = d.Int64()
}

// encodeEx appends the protocol-v3 scheduling fields after the legacy
// row. Only msgStatsEx responses carry them; the legacy msgStats row
// stays byte-identical for older clients.
func (s *TenantStats) encodeEx(e *snap.Encoder) {
	s.encode(e)
	e.Int(s.Weight)
	e.Int(s.MinDelay)
	e.Int64(s.ServedRounds)
	e.Float64(s.DelayFactor)
	e.Float64(s.MaxDelayFactor)
	e.Float64(s.ServiceShare)
	e.Float64(s.ReservedRate)
	e.Float64(s.ReservedDelay)
	e.Float64(s.BudgetUtilization)
}

func (s *TenantStats) decodeEx(d *snap.Decoder) {
	s.decode(d)
	s.Weight = d.Int()
	s.MinDelay = d.Int()
	s.ServedRounds = d.Int64()
	s.DelayFactor = d.Float64()
	s.MaxDelayFactor = d.Float64()
	s.ServiceShare = d.Float64()
	s.ReservedRate = d.Float64()
	s.ReservedDelay = d.Float64()
	s.BudgetUtilization = d.Float64()
}

func encodeStatsResp(e *snap.Encoder, rows []TenantStats) {
	e.Uint64(msgStats)
	e.Int(len(rows))
	for i := range rows {
		rows[i].encode(e)
	}
}

func decodeStatsResp(d *snap.Decoder) []TenantStats {
	n := d.Len()
	if d.Err() != nil || n == 0 {
		return nil
	}
	rows := make([]TenantStats, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		var s TenantStats
		s.decode(d)
		if d.Err() != nil {
			return nil
		}
		rows = append(rows, s)
	}
	return rows
}

func encodeStatsRespEx(e *snap.Encoder, rows []TenantStats) {
	e.Uint64(msgStatsEx)
	e.Int(len(rows))
	for i := range rows {
		rows[i].encodeEx(e)
	}
}

func decodeStatsRespEx(d *snap.Decoder) []TenantStats {
	n := d.Len()
	if d.Err() != nil || n == 0 {
		return nil
	}
	rows := make([]TenantStats, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		var s TenantStats
		s.decodeEx(d)
		if d.Err() != nil {
			return nil
		}
		rows = append(rows, s)
	}
	return rows
}

// encodeResult writes a sched.Result (minus the never-recorded
// Schedule) under the given response type (msgResult, msgDrain or
// msgCloseTenant, which all answer with a Result).
func encodeResult(e *snap.Encoder, typ uint64, r *sched.Result) {
	e.Uint64(typ)
	e.String(r.Policy)
	e.Int64(r.Cost.Reconfig)
	e.Int64(r.Cost.Drop)
	e.Int(r.Executed)
	e.Int(r.Dropped)
	e.Int(r.Reconfigs)
	e.Int(r.Rounds)
	e.Ints(r.DropsByColor)
	e.Ints(r.ExecByColor)
}

func decodeResult(d *snap.Decoder) *sched.Result {
	r := &sched.Result{}
	r.Policy = d.String()
	r.Cost.Reconfig = d.Int64()
	r.Cost.Drop = d.Int64()
	r.Executed = d.Int()
	r.Dropped = d.Int()
	r.Reconfigs = d.Int()
	r.Rounds = d.Int()
	r.DropsByColor = d.Ints()
	r.ExecByColor = d.Ints()
	if d.Err() != nil {
		return nil
	}
	return r
}

// errResp is the error response: a machine-readable code (see
// errors.go), the expected sequence for errBadSeq, and a human-readable
// message. A codeAdmission rejection additionally carries the shard's
// residual capacity (protocol v6, trailing pair encoded only for that
// code — only v6 clients can provoke it, so older peers never see it).
type errResp struct {
	Code     int
	Expected int
	Msg      string
	// ResidualRate/ResidualDelay describe what would have fit when Code
	// is codeAdmission: the shard's unreserved rate, and its own delay
	// bound (an admissible reservation's delay must exceed it).
	ResidualRate  float64
	ResidualDelay float64
}

func (m *errResp) encode(e *snap.Encoder) {
	e.Uint64(msgErr)
	e.Int(m.Code)
	e.Int(m.Expected)
	e.String(m.Msg)
	if m.Code == codeAdmission {
		e.Float64(m.ResidualRate)
		e.Float64(m.ResidualDelay)
	}
}

func (m *errResp) decode(d *snap.Decoder) {
	m.Code = d.Int()
	m.Expected = d.Int()
	m.Msg = d.String()
	m.ResidualRate, m.ResidualDelay = 0, 0
	if m.Code == codeAdmission && d.Err() == nil && d.Remaining() > 0 {
		m.ResidualRate = d.Float64()
		m.ResidualDelay = d.Float64()
	}
}
