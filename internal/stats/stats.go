// Package stats provides the small statistics and reporting toolkit used
// by the experiment harness: summaries, histograms, aligned text tables,
// CSV output and ASCII series plots for the "figure" experiments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary aggregates a sample of float64 observations. The JSON tags
// give it a stable serialized form for tooling that persists summaries
// (e.g. the benchmark regression harness in internal/bench).
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`

	// sortedForPercent retains the sorted sample so Quantile can answer
	// arbitrary percentiles. It is deliberately unexported and therefore
	// NOT part of the JSON form: a Summary read back from JSON carries
	// only the precomputed fields, and Quantile reports ErrNoSample
	// rather than silently degrading (see the Quantile doc).
	sortedForPercent []float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.sortedForPercent = sorted
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// SummarizeDurations computes a Summary of ds expressed in milliseconds
// — the unit the load-generator reports request latencies in. An empty
// sample yields a zero Summary.
func SummarizeDurations(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	ms := make([]float64, len(ds))
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(ms)
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample using
// linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ErrNoSample is reported by Summary.Quantile when the summary does not
// hold its sample — a Summary deserialized from JSON, or the zero value.
var ErrNoSample = errors.New("stats: summary holds no sample (deserialized or empty); only the precomputed fields are available")

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the summarized sample.
//
// Only a Summary produced by Summarize in this process can answer: the
// raw sample is intentionally excluded from the JSON form, so after a
// JSON roundtrip exactly the exported fields (N, Mean, …, P50/P90/P99)
// survive and Quantile reports ErrNoSample instead of returning a wrong
// or zero quantile. Callers that need other percentiles after
// persistence must store them explicitly.
func (s Summary) Quantile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: Quantile(%v) outside [0, 1]", p)
	}
	if len(s.sortedForPercent) == 0 {
		return 0, ErrNoSample
	}
	return Percentile(s.sortedForPercent, p), nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.Max)
}

// Histogram counts observations into uniform-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Under  int
	Over   int
}

// NewHistogram builds a histogram with the given bin count over [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("stats: NewHistogram needs bins ≥ 1 and hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if idx >= len(h.Bins) {
			idx = len(h.Bins) - 1
		}
		h.Bins[idx]++
	}
}

// Total reports the number of recorded observations including outliers.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}
