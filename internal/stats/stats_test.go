package stats

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P90 != 7 {
		t.Fatalf("single Summarize = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {-1, 10}, {2, 40},
		{0.5, 25}, // linear interpolation between 20 and 30
		{1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile of empty = %v", got)
	}
}

// Property: Min ≤ P50 ≤ P90 ≤ Max and Min ≤ Mean ≤ Max.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter NaN/Inf and clamp magnitudes so the sum cannot overflow
		// (Summarize targets experiment metrics, not ±1e308 extremes).
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty String")
	}
}

// TestSummaryQuantile: a live Summary answers arbitrary quantiles from
// its retained sample; bad p is rejected.
func TestSummaryQuantile(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	q, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != s.P50 {
		t.Fatalf("Quantile(0.5) = %v, P50 = %v", q, s.P50)
	}
	if q, err := s.Quantile(0); err != nil || q != 1 {
		t.Fatalf("Quantile(0) = %v, %v", q, err)
	}
	if q, err := s.Quantile(1); err != nil || q != 4 {
		t.Fatalf("Quantile(1) = %v, %v", q, err)
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(p); err == nil {
			t.Fatalf("Quantile(%v) accepted", p)
		}
	}
}

// TestSummaryJSONRoundTrip pins the serialization contract: the exported
// fields survive a JSON roundtrip bit-exactly, the retained sample is
// deliberately NOT serialized, and Quantile on the roundtripped value
// makes that explicit by reporting ErrNoSample instead of a wrong
// answer.
func TestSummaryJSONRoundTrip(t *testing.T) {
	orig := Summarize([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "sortedForPercent") {
		t.Fatalf("raw sample leaked into JSON: %s", data)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != orig.N || back.Mean != orig.Mean || back.Std != orig.Std ||
		back.Min != orig.Min || back.Max != orig.Max ||
		back.P50 != orig.P50 || back.P90 != orig.P90 || back.P99 != orig.P99 {
		t.Fatalf("exported fields changed across roundtrip:\n got %+v\nwant %+v", back, orig)
	}
	if _, err := back.Quantile(0.5); !errors.Is(err, ErrNoSample) {
		t.Fatalf("Quantile after roundtrip: err = %v, want ErrNoSample", err)
	}
	// The zero value behaves like a deserialized one.
	if _, err := (Summary{}).Quantile(0.5); !errors.Is(err, ErrNoSample) {
		t.Fatalf("Quantile on zero Summary: err = %v, want ErrNoSample", err)
	}
}
