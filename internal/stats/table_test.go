package stats

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("beta", 2.5)
	tab.AddNote("a note with %d", 42)
	return tab
}

func TestTableRender(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "2.500", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: the header and first row start "value" at the
	// same offset.
	lines := strings.Split(out, "\n")
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### demo", "| name | value |", "|---|---|", "| alpha | 1 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`quote"inside`, "with,comma")
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"quote""inside"`) {
		t.Fatalf("CSV quoting wrong:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("CSV comma quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("CSV header wrong:\n%s", out)
	}
}

func TestFigureTableUnionOfX(t *testing.T) {
	fig := NewFigure("f", "x", "y")
	s1 := fig.NewSeries("s1")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := fig.NewSeries("s2")
	s2.Add(2, 200)
	s2.Add(3, 300)
	tab := fig.Table()
	if len(tab.Rows) != 3 {
		t.Fatalf("union rows = %d, want 3", len(tab.Rows))
	}
	// x=1 row: s2 empty cell; x=3 row: s1 empty.
	if tab.Rows[0][2] != "" || tab.Rows[2][1] != "" {
		t.Fatalf("missing cells not empty: %v", tab.Rows)
	}
}

func TestFigureRenderASCII(t *testing.T) {
	fig := NewFigure("plot", "x", "y")
	s := fig.NewSeries("s")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	var b strings.Builder
	if err := fig.RenderASCII(&b, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "plot") || !strings.Contains(out, "o = s") {
		t.Fatalf("ASCII output missing pieces:\n%s", out)
	}
	// Empty figure doesn't crash.
	var b2 strings.Builder
	if err := NewFigure("empty", "x", "y").RenderASCII(&b2, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "empty figure") {
		t.Fatal("empty figure not reported")
	}
	// Degenerate single point.
	fig3 := NewFigure("pt", "x", "y")
	fig3.NewSeries("p").Add(1, 1)
	var b3 strings.Builder
	if err := fig3.RenderASCII(&b3, 10, 4); err != nil {
		t.Fatal(err)
	}
}
