package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is a named (x, y) curve; the "figure" experiments emit one or
// more series plus an ASCII rendering so curves can be eyeballed in a
// terminal and diffed in EXPERIMENTS.md.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a collection of series over a shared x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds and returns a fresh series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Table converts the figure into a table with one row per x value and one
// column per series.
func (f *Figure) Table() *Table {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	// Collect the union of x values in first-seen order.
	seen := map[float64]int{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if _, ok := seen[x]; !ok {
				seen[x] = len(xs)
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []any{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// RenderASCII draws the figure as a crude scatter plot of the given size.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		_, err := fmt.Fprintf(w, "%s: (empty figure)\n", f.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %s from %.4g to %.4g]\n", f.Title, f.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   x: %s from %.4g to %.4g\n", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   %c = %s\n", marks[si%len(marks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
