package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table used for every experiment's
// output, matching the "rows the paper reports" deliverable.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as GitHub-flavored markdown (used to
// regenerate EXPERIMENTS.md).
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header + rows). Cells containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
