// Package analysis computes post-run diagnostics from instances,
// schedules and results: windowed cost/utilization timelines and
// per-delay-class breakdowns. The rrsim CLI exposes them via -analyze and
// experiments use them to explain *why* a policy paid what it paid —
// thrashing shows up as reconfiguration-dominated windows,
// underutilization as idle capacity next to drops.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/stats"
)

// Window is one timeline bucket of a run.
type Window struct {
	// StartRound is the first round of the window; windows have uniform
	// width except possibly the last.
	StartRound int
	// Arrived, Executed and Dropped count jobs in the window.
	Arrived  int
	Executed int
	Dropped  int
	// Reconfigs counts location recolorings in the window.
	Reconfigs int
	// Utilization is the fraction of location-rounds that executed a job.
	Utilization float64
}

// Timeline replays the schedule against the instance and aggregates
// per-window statistics with the given window width (in rounds).
func Timeline(inst *sched.Instance, s *sched.Schedule, windowRounds int) ([]Window, error) {
	if windowRounds < 1 {
		return nil, fmt.Errorf("analysis: Timeline needs a positive window width")
	}
	res, execLog, err := sched.ReplayExec(inst.Clone(), s)
	if err != nil {
		return nil, err
	}
	_ = res
	speed := s.Speed
	if speed == 0 {
		speed = 1
	}

	// Replay once more manually for drops per round: cheaper to re-derive
	// from the instance and exec log. A job arriving at round r with
	// delay d is dropped at r+d unless executed earlier; rather than
	// re-tracking queues, reuse a light engine pass.
	drops, reconfigs, err := perRoundDropsAndReconfigs(inst, s)
	if err != nil {
		return nil, err
	}

	totalRounds := len(execLog) / speed
	if len(execLog)%speed != 0 {
		totalRounds++
	}
	numWindows := (totalRounds + windowRounds - 1) / windowRounds
	if numWindows == 0 {
		return nil, nil
	}
	out := make([]Window, numWindows)
	for w := range out {
		out[w].StartRound = w * windowRounds
	}

	for r := 0; r < totalRounds; r++ {
		w := r / windowRounds
		if r < inst.NumRounds() {
			out[w].Arrived += inst.Requests[r].Jobs()
		}
		if r < len(drops) {
			out[w].Dropped += drops[r]
		}
		if r < len(reconfigs) {
			out[w].Reconfigs += reconfigs[r]
		}
		for mini := 0; mini < speed; mini++ {
			idx := r*speed + mini
			if idx >= len(execLog) {
				break
			}
			for _, c := range execLog[idx] {
				if c != sched.NoColor {
					out[w].Executed++
				}
			}
		}
	}
	capPerWindow := float64(s.N * speed * windowRounds)
	for w := range out {
		rounds := windowRounds
		if last := totalRounds - out[w].StartRound; last < rounds {
			rounds = last
		}
		denom := capPerWindow
		if rounds != windowRounds {
			denom = float64(s.N * speed * rounds)
		}
		if denom > 0 {
			out[w].Utilization = float64(out[w].Executed) / denom
		}
	}
	return out, nil
}

// perRoundDropsAndReconfigs replays the schedule tracking drops and
// reconfiguration counts per round.
func perRoundDropsAndReconfigs(inst *sched.Instance, s *sched.Schedule) (drops, reconfigs []int, err error) {
	// Reuse the validator by replaying windows? Simpler: run a dedicated
	// light pass mirroring sched.Replay's structure via the public API:
	// replay round by round using a Stream with a scripted policy.
	script := &scriptedSchedule{s: s}
	st, err := sched.NewStream(script, sched.StreamConfig{
		N: s.N, Speed: maxInt(s.Speed, 1), Delta: inst.Delta, Delays: inst.Delays,
	})
	if err != nil {
		return nil, nil, err
	}
	horizon := inst.Horizon()
	if sr := s.Rounds(); sr > horizon {
		horizon = sr
	}
	for r := 0; r < horizon; r++ {
		var req sched.Request
		if r < inst.NumRounds() {
			req = inst.Requests[r]
		}
		out, err := st.Step(req)
		if err != nil {
			return nil, nil, err
		}
		d := 0
		for _, b := range out.Dropped {
			d += b.Count
		}
		drops = append(drops, d)
		reconfigs = append(reconfigs, out.Reconfigs)
	}
	return drops, reconfigs, nil
}

// scriptedSchedule replays a Schedule's assignments as a policy.
type scriptedSchedule struct {
	s    *sched.Schedule
	last []sched.Color
}

func (p *scriptedSchedule) Name() string { return "replay(" + p.s.Policy + ")" }
func (p *scriptedSchedule) Reset(env sched.Env) {
	p.last = make([]sched.Color, env.N)
	for i := range p.last {
		p.last[i] = sched.NoColor
	}
}
func (p *scriptedSchedule) Reconfigure(ctx *sched.Context) []sched.Color {
	speed := p.s.Speed
	if speed == 0 {
		speed = 1
	}
	idx := ctx.Round*speed + ctx.Mini
	if idx < len(p.s.Assign) {
		copy(p.last, p.s.Assign[idx])
	}
	return p.last
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TimelineTable renders a timeline as a table.
func TimelineTable(ws []Window, title string) *stats.Table {
	tab := stats.NewTable(title, "round", "arrived", "executed", "dropped", "reconfigs", "utilization")
	for _, w := range ws {
		tab.AddRow(w.StartRound, w.Arrived, w.Executed, w.Dropped, w.Reconfigs, w.Utilization)
	}
	return tab
}

// ClassRow summarizes one delay class of a run.
type ClassRow struct {
	Delay    int
	Colors   int
	Jobs     int
	Executed int
	Dropped  int
	DropRate float64
}

// ByDelayClass groups a result's per-color counters by delay bound — the
// per-QoS-class view a router operator would look at.
func ByDelayClass(inst *sched.Instance, res *sched.Result) []ClassRow {
	per := inst.JobsPerColor()
	byDelay := map[int]*ClassRow{}
	for c, jobs := range per {
		if jobs == 0 {
			continue
		}
		d := inst.Delays[c]
		row := byDelay[d]
		if row == nil {
			row = &ClassRow{Delay: d}
			byDelay[d] = row
		}
		row.Colors++
		row.Jobs += jobs
		row.Executed += res.ExecByColor[c]
		row.Dropped += res.DropsByColor[c]
	}
	var out []ClassRow
	for _, row := range byDelay {
		if row.Jobs > 0 {
			row.DropRate = float64(row.Dropped) / float64(row.Jobs)
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delay < out[j].Delay })
	return out
}

// ClassTable renders the per-class breakdown as a table.
func ClassTable(rows []ClassRow, title string) *stats.Table {
	tab := stats.NewTable(title, "delay bound", "colors", "jobs", "executed", "dropped", "drop rate")
	for _, r := range rows {
		tab.AddRow(r.Delay, r.Colors, r.Jobs, r.Executed, r.Dropped, r.DropRate)
	}
	return tab
}
