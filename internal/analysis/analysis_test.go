package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func recordedRun(t *testing.T, seed uint64) (*sched.Instance, *sched.Result) {
	t.Helper()
	inst := workload.Router(seed, 2, 4, 256, 6)
	res, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	return inst, res
}

func TestTimelineSumsMatchResult(t *testing.T) {
	inst, res := recordedRun(t, 9)
	ws, err := Timeline(inst.Clone(), res.Schedule, 32)
	if err != nil {
		t.Fatal(err)
	}
	var arrived, executed, dropped, reconfigs int
	for _, w := range ws {
		arrived += w.Arrived
		executed += w.Executed
		dropped += w.Dropped
		reconfigs += w.Reconfigs
	}
	if arrived != inst.TotalJobs() {
		t.Fatalf("arrived %d, want %d", arrived, inst.TotalJobs())
	}
	if executed != res.Executed {
		t.Fatalf("executed %d, want %d", executed, res.Executed)
	}
	if dropped != res.Dropped {
		t.Fatalf("dropped %d, want %d", dropped, res.Dropped)
	}
	if reconfigs != res.Reconfigs {
		t.Fatalf("reconfigs %d, want %d", reconfigs, res.Reconfigs)
	}
}

func TestTimelineUtilizationBounds(t *testing.T) {
	inst, res := recordedRun(t, 10)
	ws, err := Timeline(inst.Clone(), res.Schedule, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("empty timeline")
	}
	for i, w := range ws {
		if w.Utilization < 0 || w.Utilization > 1+1e-9 {
			t.Fatalf("window %d: utilization %v", i, w.Utilization)
		}
		if w.StartRound != i*64 {
			t.Fatalf("window %d starts at %d", i, w.StartRound)
		}
	}
}

func TestTimelineRejectsBadWindow(t *testing.T) {
	inst, res := recordedRun(t, 11)
	if _, err := Timeline(inst, res.Schedule, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestByDelayClass(t *testing.T) {
	inst, res := recordedRun(t, 12)
	rows := ByDelayClass(inst, res)
	if len(rows) != 4 {
		t.Fatalf("router has 4 delay classes, got %d rows", len(rows))
	}
	jobs := 0
	for i, r := range rows {
		if i > 0 && rows[i-1].Delay >= r.Delay {
			t.Fatal("rows not sorted by delay")
		}
		if r.Executed+r.Dropped != r.Jobs {
			t.Fatalf("class %d: %d + %d != %d", r.Delay, r.Executed, r.Dropped, r.Jobs)
		}
		if r.DropRate < 0 || r.DropRate > 1 {
			t.Fatalf("class %d: drop rate %v", r.Delay, r.DropRate)
		}
		jobs += r.Jobs
	}
	if jobs != inst.TotalJobs() {
		t.Fatalf("class totals %d != %d", jobs, inst.TotalJobs())
	}
}

func TestTables(t *testing.T) {
	inst, res := recordedRun(t, 13)
	ws, err := Timeline(inst.Clone(), res.Schedule, 64)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := TimelineTable(ws, "timeline").Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "utilization") {
		t.Fatal("timeline table missing columns")
	}
	var b2 strings.Builder
	if err := ClassTable(ByDelayClass(inst, res), "classes").Render(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "drop rate") {
		t.Fatal("class table missing columns")
	}
}
