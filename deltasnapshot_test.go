package rrs

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/snap"
)

// TestFaultInjectionDeltaSnapshots extends the crash-fault harness to
// the delta snapshot path (Stream.SnapshotDelta): at every round of a
// reference run a delta is taken against a full base snapshot, the
// delta is applied back onto the base, and the stream "killed" there is
// restored from the applied blob and driven to the end of the trace.
// The resumed Result must be bit-identical to the uninterrupted run —
// the same contract the full-snapshot harness pins — and each applied
// delta must reproduce the round's full snapshot byte for byte.
func TestFaultInjectionDeltaSnapshots(t *testing.T) {
	inst := faultInstance()
	for _, fc := range faultCases() {
		t.Run(fc.name, func(t *testing.T) {
			cfg := StreamConfig{N: 8, Speed: fc.speed, Delta: inst.Delta, Delays: inst.Delays}
			arrivals := func(r int) Request {
				if r < inst.NumRounds() {
					return inst.Requests[r]
				}
				return nil
			}

			st, err := NewStream(fc.mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			base, err := st.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			type snapPair struct{ full, applied []byte }
			var snaps []snapPair
			snaps = append(snaps, snapPair{base, base})
			var deltaBuf []byte
			for st.Round() < inst.NumRounds() || st.TotalPending() > 0 {
				if _, err := st.Step(arrivals(st.Round())); err != nil {
					t.Fatal(err)
				}
				full, err := st.Snapshot()
				if err != nil {
					t.Fatalf("full snapshot at round %d: %v", st.Round(), err)
				}
				deltaBuf, err = st.SnapshotDelta(base, deltaBuf[:0])
				if err != nil {
					t.Fatalf("delta snapshot at round %d: %v", st.Round(), err)
				}
				applied, err := snap.ApplyDelta(nil, base, deltaBuf)
				if err != nil {
					t.Fatalf("apply delta at round %d: %v", st.Round(), err)
				}
				if !bytes.Equal(applied, full) {
					t.Fatalf("round %d: applied delta differs from full snapshot", st.Round())
				}
				snaps = append(snaps, snapPair{full, applied})
			}
			want := st.Result()
			total := st.Round()

			// Crash at a spread of rounds, restore from the applied delta.
			for k := 0; k <= total; k += 1 + total/16 {
				st2, err := RestoreStream(fc.mk(), snaps[k].applied, nil)
				if err != nil {
					t.Fatalf("restore from applied delta at round %d: %v", k, err)
				}
				for st2.Round() < total {
					if _, err := st2.Step(arrivals(st2.Round())); err != nil {
						t.Fatalf("resumed run at round %d: %v", st2.Round(), err)
					}
				}
				if got := st2.Result(); !reflect.DeepEqual(got, want) {
					t.Fatalf("crash at round %d: delta-restored Result diverged", k)
				}
			}
		})
	}
}
