package rrs

import (
	"errors"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	inst := &Instance{
		Name:   "facade",
		Delta:  4,
		Delays: []int{2, 8},
	}
	inst.AddJobs(0, 1, 8)
	inst.AddJobs(2, 0, 2)

	res, err := Solve(inst.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != inst.TotalJobs() {
		t.Fatal("conservation broken through the facade")
	}

	for _, pol := range []Policy{NewDLRUEDF(), NewDLRU(), NewEDF(), NewSeqEDF(), NewNever(), NewGreedyPending(), NewStatic(1)} {
		r, err := Run(inst.Clone(), pol, Options{N: 8})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if r.Executed+r.Dropped != inst.TotalJobs() {
			t.Fatalf("%s: conservation broken", pol.Name())
		}
	}

	opt, err := OptimalCost(inst.Clone(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := CertifiedLowerBound(inst.Clone(), 1)
	if lb > opt {
		t.Fatalf("certified LB %d exceeds OPT %d", lb, opt)
	}
	if res.Cost.Total() < lb {
		t.Fatalf("online cost %d below the m=1 lower bound %d", res.Cost.Total(), lb)
	}
}

func TestFacadeDistribute(t *testing.T) {
	inst := &Instance{Delta: 2, Delays: []int{2, 4}}
	inst.AddJobs(0, 0, 2)
	inst.AddJobs(0, 1, 9)
	inst.AddJobs(4, 1, 3)
	res, err := Distribute(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != inst.TotalJobs() {
		t.Fatal("Distribute conservation broken")
	}
	vb := BuildVarBatched(inst)
	if !vb.IsBatched() {
		t.Fatal("BuildVarBatched output not batched")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if _, err := AppendixA(8, 2, 5, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendixB(8, 9, 4, 6); err != nil {
		t.Fatal(err)
	}
	r := RouterWorkload(1, 2, 4, 128, 4)
	if r.TotalJobs() == 0 {
		t.Fatal("router workload empty")
	}
	d := DatacenterWorkload(1, 6, 4, 64, 2, 4)
	if d.TotalJobs() == 0 {
		t.Fatal("datacenter workload empty")
	}
}

func TestFacadeOfflineTools(t *testing.T) {
	inst := &Instance{Delta: 3, Delays: []int{2, 8}}
	inst.AddJobs(0, 1, 6)
	inst.AddJobs(2, 0, 3)
	rec, err := Run(inst.Clone(), NewGreedyPending(), Options{N: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	improved, res, err := ImproveSchedule(inst.Clone(), rec.Schedule, 2)
	if err != nil {
		t.Fatal(err)
	}
	if improved == nil || res.Cost.Total() > rec.Cost.Total() {
		t.Fatalf("ImproveSchedule worsened cost: %v vs %v", res.Cost, rec.Cost)
	}
	punct, err := Punctualize(inst.Clone(), rec.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if punct.N != 7*rec.Schedule.N {
		t.Fatalf("Punctualize produced %d resources", punct.N)
	}
	batched := BuildVarBatched(inst.Clone())
	if _, err := Replay(batched, punct); err != nil {
		t.Fatalf("punctualized schedule not feasible for the batched instance: %v", err)
	}
}

func TestFacadeWorkloadByName(t *testing.T) {
	names := WorkloadNames()
	if len(names) < 8 {
		t.Fatalf("only %d workload names", len(names))
	}
	inst, err := WorkloadByName("router", WorkloadParams{Seed: 1, Rounds: 64})
	if err != nil {
		t.Fatal(err)
	}
	if inst.TotalJobs() == 0 {
		t.Fatal("empty workload")
	}
	if _, err := WorkloadByName("bogus", WorkloadParams{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFacadeExtensions(t *testing.T) {
	inst := RouterWorkload(3, 2, 4, 128, 4)
	for _, pol := range []Policy{NewHysteresis(1), NewDLRUEDF(WithAdaptiveSplit())} {
		res, err := Run(inst.Clone(), pol, Options{N: 8})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Executed+res.Dropped != inst.TotalJobs() {
			t.Fatalf("%s: conservation broken", pol.Name())
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	var sb strings.Builder
	if err := RunExperiment("T3", ExperimentConfig{Quick: true}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "T3") {
		t.Fatal("experiment output missing ID")
	}
	err := RunExperiment("bogus", ExperimentConfig{Quick: true}, &sb)
	var unknown *UnknownExperimentError
	if !errors.As(err, &unknown) || unknown.ID != "bogus" {
		t.Fatalf("err = %v", err)
	}
	if unknown.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestFacadeFindWorstCase(t *testing.T) {
	res, err := FindWorstCase(AdversaryConfig{Seed: 2, Restarts: 2, StepsPerRestart: 10, Batched: true},
		func() Policy { return NewGreedyPending() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || res.Ratio <= 0 {
		t.Fatalf("empty adversary result: %+v", res)
	}
}
