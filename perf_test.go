package rrs

// This file pins the repository's zero-allocation contracts (see
// docs/PERFORMANCE.md): a steady-state Stream.Step must not allocate for
// the full ΔLRU-EDF policy — tracker bookkeeping, recency sort, EDF
// ranking, cache sync and engine accounting included — nor for the ΔLRU,
// EDF and Seq-EDF baselines. The contract covers the complete policy
// step, not just the unprobed engine (which TestStepAllocFree in
// internal/sched pins separately with a trivial Static policy).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
)

// steadyStream warms a stream over a mixed workload until every scratch
// buffer has reached its steady-state capacity.
func steadyStream(t testing.TB, pol sched.Policy, probe sched.Probe) (*sched.Stream, sched.Request) {
	t.Helper()
	st, err := sched.NewStream(pol, sched.StreamConfig{
		N:      16,
		Delta:  4,
		Delays: []int{2, 8, 4, 16, 2, 8, 4, 16},
		Probe:  probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unsorted, with a duplicate batch, so Step also pays normalization.
	req := sched.Request{
		{Color: 1, Count: 2}, {Color: 0, Count: 1}, {Color: 3, Count: 1},
		{Color: 5, Count: 2}, {Color: 0, Count: 1}, {Color: 6, Count: 1},
	}
	for i := 0; i < 512; i++ {
		if _, err := st.Step(req); err != nil {
			t.Fatal(err)
		}
	}
	return st, req
}

// pinStepAllocs asserts the steady-state allocation count of one Step.
func pinStepAllocs(t *testing.T, name string, pol sched.Policy, probe sched.Probe, want float64) {
	t.Helper()
	st, req := steadyStream(t, pol, probe)
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := st.Step(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > want {
		t.Errorf("%s: %v allocs per steady-state Step, want ≤ %v", name, allocs, want)
	}
}

// TestFullPolicyStepAllocFree is the allocation-pinning test for the
// complete ΔLRU-EDF policy step (and the §3.1 baselines): zero heap
// allocations per round in the steady state. A regression here means a
// hot-path change reintroduced per-round garbage — see docs/PERFORMANCE.md
// for the usual culprits (sort.Slice, per-call maps, local scratch).
func TestFullPolicyStepAllocFree(t *testing.T) {
	pinStepAllocs(t, "DLRU-EDF", core.NewDLRUEDF(), nil, 0)
	pinStepAllocs(t, "DLRU", policy.NewDLRU(), nil, 0)
	pinStepAllocs(t, "EDF", policy.NewEDF(), nil, 0)
	pinStepAllocs(t, "SeqEDF", policy.NewSeqEDF(), nil, 0)
	pinStepAllocs(t, "GreedyPending", policy.NewGreedyPending(), nil, 0)
}

// TestFullPolicyStepAllocFreeWithCounterSink extends the contract to the
// cheapest probe: observability at CounterSink level must stay free.
func TestFullPolicyStepAllocFreeWithCounterSink(t *testing.T) {
	pinStepAllocs(t, "DLRU-EDF+CounterSink", core.NewDLRUEDF(), &sched.CounterSink{}, 0)
}

// TestSnapshotAllocFlat pins the pooled snapshot path (PR 9): a
// steady-state Stream.AppendSnapshot into a recycled buffer, and a
// SnapshotDelta against a retained base, must not allocate. This is
// what keeps the serve tier's group-commit checkpoint path flat — every
// checkpointed round takes one of these snapshots.
func TestSnapshotAllocFlat(t *testing.T) {
	st, req := steadyStream(t, core.NewDLRUEDF(), nil)
	var buf []byte
	var err error
	// Warm: grow buf (and the encoder's internals) to working-set size.
	for i := 0; i < 4; i++ {
		if buf, err = st.AppendSnapshot(buf[:0]); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Step(req); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if buf, err = st.AppendSnapshot(buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state AppendSnapshot: %v allocs per call, want 0", allocs)
	}

	base := append([]byte(nil), buf...)
	var delta []byte
	if delta, err = st.SnapshotDelta(base, nil); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(300, func() {
		if delta, err = st.SnapshotDelta(base, delta[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state SnapshotDelta: %v allocs per call, want 0", allocs)
	}
}
