package rrs_test

import (
	"fmt"

	rrs "repro"
)

// ExampleSolve runs the paper's full online algorithm on a small
// hand-built instance.
func ExampleSolve() {
	inst := &rrs.Instance{
		Delta:  3,
		Delays: []int{8, 8}, // two batch categories
	}
	inst.AddJobs(0, 0, 6) // a backlog of category 0 at round 0
	inst.AddJobs(8, 1, 6) // a backlog of category 1 at round 8

	res, err := rrs.Solve(inst, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("executed %d of %d jobs\n", res.Executed, inst.TotalJobs())
	// Output:
	// executed 12 of 12 jobs
}

// ExampleRun compares the paper's algorithm with a baseline on the same
// instance.
func ExampleRun() {
	inst := &rrs.Instance{Delta: 2, Delays: []int{4}}
	inst.AddJobs(0, 0, 4)

	combo, _ := rrs.Run(inst.Clone(), rrs.NewDLRUEDF(), rrs.Options{N: 4})
	never, _ := rrs.Run(inst.Clone(), rrs.NewNever(), rrs.Options{N: 4})
	fmt.Printf("ΔLRU-EDF drops %d, Never drops %d\n", combo.Dropped, never.Dropped)
	// Output:
	// ΔLRU-EDF drops 0, Never drops 4
}

// ExampleNewStream drives the scheduler round by round, the way a live
// system would.
func ExampleNewStream() {
	st, err := rrs.NewStream(rrs.NewDLRUEDF(), rrs.StreamConfig{
		N: 4, Delta: 2, Delays: []int{4},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for round := 0; round < 3; round++ {
		if _, err := st.Step(rrs.Request{{Color: 0, Count: 2}}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	st.Drain()
	fmt.Printf("executed %d, dropped %d\n", st.Executed(), st.Dropped())
	// Output:
	// executed 6, dropped 0
}

// ExampleOptimalCost computes the exact offline optimum of a tiny
// instance and the certified bound that is available at any scale.
func ExampleOptimalCost() {
	inst := &rrs.Instance{Delta: 3, Delays: []int{8}}
	inst.AddJobs(0, 0, 5)

	opt, _ := rrs.OptimalCost(inst, 1, 0)
	lb := rrs.CertifiedLowerBound(inst, 1)
	fmt.Printf("OPT = %d, certified LB = %d\n", opt, lb)
	// Output:
	// OPT = 3, certified LB = 3
}

// ExampleAppendixA regenerates the paper's Appendix A lower-bound input
// and shows ΔLRU failing on it while ΔLRU-EDF does not.
func ExampleAppendixA() {
	inst, err := rrs.AppendixA(8, 2, 5, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lru, _ := rrs.Run(inst.Clone(), rrs.NewDLRU(), rrs.Options{N: 8})
	combo, _ := rrs.Run(inst.Clone(), rrs.NewDLRUEDF(), rrs.Options{N: 8})
	fmt.Printf("ΔLRU drops %d long jobs; ΔLRU-EDF drops %d\n", lru.Dropped, combo.Dropped)
	// Output:
	// ΔLRU drops 128 long jobs; ΔLRU-EDF drops 0
}
