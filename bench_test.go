package rrs

// This file is the benchmark harness required by DESIGN.md §3: one
// benchmark per experiment (table/figure), each regenerating its artifact
// through the internal/exp registry in Quick mode, plus micro-benchmarks
// of the hot paths (engine rounds, policy steps, offline bounds).
//
// Run with: go test -bench=. -benchmem

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/workload"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(exp.Config{Quick: true, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1AppendixA(b *testing.B)    { benchExperiment(b, "F1") }
func BenchmarkF2AppendixB(b *testing.B)    { benchExperiment(b, "F2") }
func BenchmarkF3Thrashing(b *testing.B)    { benchExperiment(b, "F3") }
func BenchmarkT1Theorem1(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkT2Lemma32(b *testing.B)      { benchExperiment(b, "T2") }
func BenchmarkT3Epochs(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkT4Augmentation(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkT5Distribute(b *testing.B)   { benchExperiment(b, "T5") }
func BenchmarkT6Solver(b *testing.B)       { benchExperiment(b, "T6") }
func BenchmarkT7DSSeqEDF(b *testing.B)     { benchExperiment(b, "T7") }
func BenchmarkT8Aggregate(b *testing.B)    { benchExperiment(b, "T8") }
func BenchmarkT9Throughput(b *testing.B)   { benchExperiment(b, "T9") }
func BenchmarkT10Punctualize(b *testing.B) { benchExperiment(b, "T10") }
func BenchmarkT11Lemma35(b *testing.B)     { benchExperiment(b, "T11") }
func BenchmarkT12Discretize(b *testing.B)  { benchExperiment(b, "T12") }
func BenchmarkT13Adversary(b *testing.B)   { benchExperiment(b, "T13") }

// Ablation benches (DESIGN.md §5).
func BenchmarkAblationReplication(b *testing.B)  { benchExperiment(b, "A1") }
func BenchmarkAblationSplit(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkAblationThreshold(b *testing.B)    { benchExperiment(b, "A3") }
func BenchmarkAblationTimestampLag(b *testing.B) { benchExperiment(b, "A4") }
func BenchmarkAblationAdaptive(b *testing.B)     { benchExperiment(b, "A5") }

// — Micro-benchmarks of the hot paths —

// benchPolicyRun measures end-to-end simulation throughput for a policy on
// a fixed mid-size router trace; the per-op metric is one full run.
func benchPolicyRun(b *testing.B, mk func() sched.Policy, n int) {
	b.Helper()
	inst := workload.Router(3, 4, 8, 4096, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(inst, mk(), sched.Options{N: n}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(inst.TotalJobs()))
}

func BenchmarkEngineDLRUEDF(b *testing.B) {
	benchPolicyRun(b, func() sched.Policy { return core.NewDLRUEDF() }, 16)
}

func BenchmarkEngineDLRU(b *testing.B) {
	benchPolicyRun(b, func() sched.Policy { return policy.NewDLRU() }, 16)
}

func BenchmarkEngineEDF(b *testing.B) {
	benchPolicyRun(b, func() sched.Policy { return policy.NewEDF() }, 16)
}

func BenchmarkEngineNever(b *testing.B) {
	benchPolicyRun(b, func() sched.Policy { return policy.NewNever() }, 16)
}

func BenchmarkSolvePipeline(b *testing.B) {
	inst := workload.Router(3, 4, 8, 2048, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(inst.Clone(), 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParEDFLowerBound(b *testing.B) {
	inst := workload.Router(3, 4, 8, 4096, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.ParEDFDrops(inst, 2, 1)
	}
}

func BenchmarkBruteForceTiny(b *testing.B) {
	inst := workload.RandomSmall(5, 3, 2, 12, []int{1, 2, 4}, 3, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.BruteForce(inst.Clone(), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamStep measures a single steady-state Stream.Step — the
// per-round dataplane cost — with a given probe attached. With no probe
// (and with the value-only CounterSink) this path must not allocate; the
// benchmem column is the regression guard for that guarantee.
func benchStreamStep(b *testing.B, probe sched.Probe) {
	b.Helper()
	st, err := sched.NewStream(policy.NewStatic(0, 1), sched.StreamConfig{
		N: 2, Delta: 4, Delays: []int{2, 8}, Probe: probe,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Unsorted with a duplicate batch so Step also pays for normalization.
	req := sched.Request{{Color: 1, Count: 1}, {Color: 0, Count: 1}, {Color: 0, Count: 1}}
	for i := 0; i < 64; i++ { // reach steady state: buffers warm, pool bounded
		if _, err := st.Step(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Step(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamStepNoProbe(b *testing.B) { benchStreamStep(b, nil) }

// benchPolicyStep measures one steady-state Stream.Step for a real policy
// — the complete per-round cost including tracker bookkeeping, ranking
// sorts and cache maintenance, not just the engine shell that
// benchStreamStep (Static policy) isolates. The benchmem column must read
// 0 allocs/op; TestFullPolicyStepAllocFree pins the same contract.
func benchPolicyStep(b *testing.B, pol sched.Policy) {
	b.Helper()
	st, req := steadyStream(b, pol, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Step(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyStepDLRUEDF(b *testing.B) { benchPolicyStep(b, core.NewDLRUEDF()) }

func BenchmarkPolicyStepDLRU(b *testing.B) { benchPolicyStep(b, policy.NewDLRU()) }

func BenchmarkPolicyStepEDF(b *testing.B) { benchPolicyStep(b, policy.NewEDF()) }

func BenchmarkStreamStepCounterSink(b *testing.B) { benchStreamStep(b, &sched.CounterSink{}) }

func BenchmarkStreamStepMetricsSink(b *testing.B) {
	benchStreamStep(b, sched.NewMetricsSink(8, 64))
}

// BenchmarkRunCounterSink is the full-run analogue: engine throughput with
// a counting probe attached, for comparison against BenchmarkEngineDLRUEDF.
func BenchmarkRunCounterSink(b *testing.B) {
	inst := workload.Router(3, 4, 8, 4096, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &sched.CounterSink{}
		if _, err := sched.Run(inst, core.NewDLRUEDF(), sched.Options{N: 16, Probe: sink}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(inst.TotalJobs()))
}

func BenchmarkScheduleReplay(b *testing.B) {
	inst := workload.Router(3, 4, 8, 2048, 12)
	res, err := sched.Run(inst.Clone(), core.NewDLRUEDF(), sched.Options{N: 16, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Replay(inst, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateTransform(b *testing.B) {
	inst := workload.RandomBatched(9, 8, 3, 256, []int{2, 4, 8}, 1.2, 0.6, false)
	t, err := sched.Run(inst.Clone(), policy.NewSeqEDF(), sched.Options{N: 3, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.Aggregate(inst.Clone(), t.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
