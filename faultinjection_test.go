package rrs

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// Crash-fault-injection differential harness for the checkpoint/restore
// subsystem: for every policy and every round k of a reference run, the
// stream is "killed" at round k (simulated by restoring the snapshot
// taken there into a fresh policy) and driven to the end of the trace.
// The resumed Result must be bit-identical to the uninterrupted run's —
// the deterministic-resume contract of Stream.Snapshot/RestoreStream —
// and re-snapshotting immediately after the restore must reproduce the
// snapshot bytes exactly.
//
// `make faultsmoke` runs exactly the TestFaultInjection* tests.

type faultCase struct {
	name  string
	mk    func() Policy
	speed int
}

func faultCases() []faultCase {
	return []faultCase{
		{"dlruedf", func() Policy { return NewDLRUEDF() }, 1},
		{"dlruedf-adaptive", func() Policy { return NewDLRUEDF(WithAdaptiveSplit()) }, 1},
		{"dlru", func() Policy { return NewDLRU() }, 1},
		{"edf", func() Policy { return NewEDF() }, 1},
		{"seqedf", func() Policy { return NewSeqEDF() }, 1},
		{"ds-seqedf", func() Policy { return NewSeqEDF() }, 2},
		{"static", func() Policy { return NewStatic(0, 1, 2, 3) }, 1},
		{"never", func() Policy { return NewNever() }, 1},
		{"greedy", func() Policy { return NewGreedyPending() }, 1},
		{"hysteresis", func() Policy { return NewHysteresis(1) }, 1},
		{"randomevict", func() Policy { return policy.NewRandomEvict(42) }, 1},
	}
}

// faultInstance is the shared corpus: a router trace with 8 QoS colors,
// small enough that crashing at every single round stays fast.
func faultInstance() *Instance {
	return workload.Router(5, 2, 6, 64, 5).Normalize()
}

func TestFaultInjectionResumeEveryRound(t *testing.T) {
	inst := faultInstance()
	for _, fc := range faultCases() {
		t.Run(fc.name, func(t *testing.T) {
			cfg := StreamConfig{N: 8, Speed: fc.speed, Delta: inst.Delta, Delays: inst.Delays}
			arrivals := func(r int) Request {
				if r < inst.NumRounds() {
					return inst.Requests[r]
				}
				return nil // drain phase
			}

			// Reference run, snapshotting at every round boundary.
			st, err := NewStream(fc.mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var snaps [][]byte
			takeSnap := func() {
				b, err := st.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at round %d: %v", st.Round(), err)
				}
				snaps = append(snaps, b)
			}
			takeSnap()
			for st.Round() < inst.NumRounds() || st.TotalPending() > 0 {
				if _, err := st.Step(arrivals(st.Round())); err != nil {
					t.Fatal(err)
				}
				takeSnap()
			}
			want := st.Result()
			total := st.Round()

			// Crash at every round k, restore, finish the trace.
			for k := 0; k <= total; k++ {
				st2, err := RestoreStream(fc.mk(), snaps[k], nil)
				if err != nil {
					t.Fatalf("restore at round %d: %v", k, err)
				}
				if st2.Round() != k {
					t.Fatalf("restore at round %d resumed at round %d", k, st2.Round())
				}
				re, err := st2.Snapshot()
				if err != nil {
					t.Fatalf("re-snapshot at round %d: %v", k, err)
				}
				if !bytes.Equal(re, snaps[k]) {
					t.Fatalf("re-snapshot at round %d is not byte-identical to the snapshot", k)
				}
				for st2.Round() < total {
					if _, err := st2.Step(arrivals(st2.Round())); err != nil {
						t.Fatalf("resumed run at round %d: %v", st2.Round(), err)
					}
				}
				if got := st2.Result(); !reflect.DeepEqual(got, want) {
					t.Fatalf("crash at round %d: resumed Result diverged\n got: %+v\nwant: %+v", k, got, want)
				}
			}
		})
	}
}

// TestFaultInjectionCorruptSnapshots: RestoreStream must reject — with
// an error, never a panic — every truncation of a real snapshot, and
// must survive arbitrary byte corruption without panicking.
func TestFaultInjectionCorruptSnapshots(t *testing.T) {
	inst := faultInstance()
	st, err := NewStream(NewDLRUEDF(), StreamConfig{N: 8, Delta: inst.Delta, Delays: inst.Delays})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		if _, err := st.Step(inst.Requests[r]); err != nil {
			t.Fatal(err)
		}
	}
	good, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the untampered snapshot restores.
	if _, err := RestoreStream(NewDLRUEDF(), good, nil); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}

	// Every strict prefix must be rejected.
	for cut := 0; cut < len(good); cut++ {
		if _, err := RestoreStream(NewDLRUEDF(), good[:cut], nil); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) restored without error", cut, len(good))
		}
	}

	// Byte-level corruption must never panic (RestoreStream's validation
	// plus its recover backstop). A flip that only touches a free-standing
	// counter may legitimately restore; the guarantee under test is
	// error-or-success, never a crash.
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		_, _ = RestoreStream(NewDLRUEDF(), bad, nil)
	}
}

// TestFaultInjectionMismatches: snapshots must only restore into the
// policy and version they were taken with.
func TestFaultInjectionMismatches(t *testing.T) {
	inst := faultInstance()
	st, err := NewStream(NewDLRUEDF(), StreamConfig{N: 8, Delta: inst.Delta, Delays: inst.Delays})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if _, err := st.Step(inst.Requests[r]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreStream(NewEDF(), snap, nil); err == nil {
		t.Fatal("snapshot of DLRU-EDF restored into EDF without error")
	}
	if _, err := RestoreStream(NewDLRUEDF(WithAdaptiveSplit()), snap, nil); err == nil {
		t.Fatal("fixed-split snapshot restored into adaptive-split policy without error")
	}
	if _, err := RestoreStream(NewDLRUEDF(), nil, nil); err == nil {
		t.Fatal("empty snapshot restored without error")
	}
	// The version tag is the first varint; 1 encodes as the single byte
	// 0x02 (zigzag), so rewriting it to encode 2 must be rejected.
	bumped := append([]byte(nil), snap...)
	bumped[0] = 0x04
	if _, err := RestoreStream(NewDLRUEDF(), bumped, nil); err == nil {
		t.Fatal("snapshot with bumped version restored without error")
	}
}

// TestFaultInjectionProbeReattach: a probe handed to RestoreStream sees
// exactly the post-restore rounds — observability resumes cleanly even
// though sinks are not serialized.
func TestFaultInjectionProbeReattach(t *testing.T) {
	inst := faultInstance()
	cfg := StreamConfig{N: 8, Delta: inst.Delta, Delays: inst.Delays}
	st, err := NewStream(NewDLRUEDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 20
	for r := 0; r < crashAt; r++ {
		if _, err := st.Step(inst.Requests[r]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var sink CounterSink
	st2, err := RestoreStream(NewDLRUEDF(), snap, &sink)
	if err != nil {
		t.Fatal(err)
	}
	for st2.Round() < inst.NumRounds() || st2.TotalPending() > 0 {
		var req Request
		if r := st2.Round(); r < inst.NumRounds() {
			req = inst.Requests[r]
		}
		if _, err := st2.Step(req); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sink.Rounds, st2.Round()-crashAt; got != want {
		t.Fatalf("reattached probe saw %d rounds, want %d", got, want)
	}
}
