// Command rradversary hunts for worst-case inputs: it hill-climbs over
// tiny instances maximizing a policy's cost ratio against the exact
// offline optimum, and prints the worst instance found (optionally as a
// trace file for replay with rrsim/rrtrace).
//
// Usage:
//
//	rradversary -policy dlru -restarts 20 -steps 100
//	rradversary -policy greedy -o worst.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	var (
		policyName = flag.String("policy", "dlruedf", "policy to attack: dlruedf | dlru | edf | greedy | hysteresis | seqedf")
		seed       = flag.Uint64("seed", 1, "search seed")
		restarts   = flag.Int("restarts", 12, "hill-climbing restarts")
		steps      = flag.Int("steps", 80, "mutation steps per restart")
		n          = flag.Int("n", 8, "online resources")
		m          = flag.Int("m", 1, "offline optimum resources")
		maxRounds  = flag.Int("rounds", 16, "max instance rounds")
		maxColors  = flag.Int("colors", 3, "max instance colors")
		batched    = flag.Bool("batched", true, "restrict to batched rate-limited instances")
		out        = flag.String("o", "", "write the worst instance as a JSON trace")
	)
	flag.Parse()

	mk, err := policyFactory(*policyName)
	if err != nil {
		fatal(err)
	}
	cfg := adversary.Config{
		Seed:            *seed,
		Restarts:        *restarts,
		StepsPerRestart: *steps,
		N:               *n,
		M:               *m,
		MaxRounds:       *maxRounds,
		MaxColors:       *maxColors,
		Batched:         *batched,
	}
	res, err := adversary.Search(cfg, mk)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scored %d instances\n", res.Evaluated)
	fmt.Printf("worst ratio: %.3f  (policy cost %d vs exact OPT %d with m=%d)\n",
		res.Ratio, res.PolicyCost, res.Opt, *m)
	fmt.Printf("worst instance: %d colors (delays %v), %d jobs over %d rounds, Δ=%d\n",
		res.Instance.NumColors(), res.Instance.Delays,
		res.Instance.TotalJobs(), res.Instance.NumRounds(), res.Instance.Delta)
	for r, req := range res.Instance.Requests {
		for _, b := range req {
			fmt.Printf("  round %2d: %d × color %d\n", r, b.Count, b.Color)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteJSON(f, res.Instance); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func policyFactory(name string) (func() sched.Policy, error) {
	switch name {
	case "dlruedf":
		return func() sched.Policy { return core.NewDLRUEDF() }, nil
	case "dlru":
		return func() sched.Policy { return policy.NewDLRU() }, nil
	case "edf":
		return func() sched.Policy { return policy.NewEDF() }, nil
	case "greedy":
		return func() sched.Policy { return policy.NewGreedyPending() }, nil
	case "hysteresis":
		return func() sched.Policy { return policy.NewHysteresis(1) }, nil
	case "seqedf":
		return func() sched.Policy { return policy.NewPureSeqEDF() }, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rradversary:", err)
	os.Exit(1)
}
