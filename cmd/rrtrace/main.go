// Command rrtrace generates, converts and inspects workload traces in the
// repository's JSON/CSV interchange formats, so instances used in
// experiments can be exported, shared and replayed byte-for-byte.
//
// Usage:
//
//	rrtrace -gen router -rounds 2048 -seed 7 -o trace.json
//	rrtrace -convert trace.json -o trace.csv
//	rrtrace -stat trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		gen     = flag.String("gen", "", fmt.Sprintf("generate a workload: %v", workload.Names()))
		convert = flag.String("convert", "", "convert an existing trace file (json⇄csv by extension)")
		stat    = flag.String("stat", "", "print statistics of a trace file")
		out     = flag.String("o", "", "output path (extension selects json or csv; default stdout as json)")
		rounds  = flag.Int("rounds", 1024, "rounds for generated workloads")
		seed    = flag.Uint64("seed", 1, "generator seed")
		delta   = flag.Int("delta", 8, "reconfiguration cost Δ")
		load    = flag.Float64("load", 6, "offered load for stochastic workloads")
		n       = flag.Int("n", 8, "n parameter for appendix constructions")
		j       = flag.Int("j", 6, "j parameter for appendix constructions")
		k       = flag.Int("k", 8, "k parameter for appendix constructions")
	)
	flag.Parse()

	switch {
	case *gen != "":
		inst, err := generate(*gen, *rounds, *seed, *delta, *load, *n, *j, *k)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(inst, *out); err != nil {
			fatal(err)
		}
	case *convert != "":
		inst, err := readTrace(*convert)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(inst, *out); err != nil {
			fatal(err)
		}
	case *stat != "":
		inst, err := readTrace(*stat)
		if err != nil {
			fatal(err)
		}
		printStats(inst)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name string, rounds int, seed uint64, delta int, load float64, n, j, k int) (*sched.Instance, error) {
	return workload.ByName(name, workload.Params{
		Seed: seed, Delta: delta, Rounds: rounds, Load: load, N: n, J: j, K: k,
	})
}

func readTrace(path string) (*sched.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	return trace.ReadJSON(f)
}

func writeTrace(inst *sched.Instance, path string) error {
	if path == "" {
		return trace.WriteJSON(os.Stdout, inst)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.WriteCSV(f, inst)
	}
	return trace.WriteJSON(f, inst)
}

func printStats(inst *sched.Instance) {
	fmt.Printf("name:    %s\n", inst.Name)
	fmt.Printf("Δ:       %d\n", inst.Delta)
	fmt.Printf("colors:  %d\n", inst.NumColors())
	fmt.Printf("rounds:  %d (horizon %d)\n", inst.NumRounds(), inst.Horizon())
	fmt.Printf("jobs:    %d\n", inst.TotalJobs())
	fmt.Printf("batched: %v   rate-limited: %v   pow2 delays: %v\n",
		inst.IsBatched(), inst.IsRateLimited(), inst.HasPowerOfTwoDelays())

	per := inst.JobsPerColor()
	type row struct{ c, jobs int }
	var rows []row
	for c, jobs := range per {
		if jobs > 0 {
			rows = append(rows, row{c, jobs})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].jobs > rows[j].jobs })
	if len(rows) > 10 {
		rows = rows[:10]
	}
	tab := stats.NewTable("top colors", "color", "delay", "jobs")
	for _, r := range rows {
		tab.AddRow(r.c, inst.Delays[r.c], r.jobs)
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrtrace:", err)
	os.Exit(1)
}
