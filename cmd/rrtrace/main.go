// Command rrtrace generates, converts and inspects workload traces in the
// repository's JSON/CSV interchange formats, so instances used in
// experiments can be exported, shared and replayed byte-for-byte.
//
// Usage:
//
//	rrtrace -gen router -rounds 2048 -seed 7 -o trace.json
//	rrtrace -convert trace.json -o trace.csv
//	rrtrace -stat trace.json
//	rrtrace -play trace.json -policy dlruedf -n 8 -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		gen     = flag.String("gen", "", fmt.Sprintf("generate a workload: %v", workload.Names()))
		convert = flag.String("convert", "", "convert an existing trace file (json⇄csv by extension)")
		stat    = flag.String("stat", "", "print statistics of a trace file")
		play    = flag.String("play", "", "stream a trace file through an online policy and print the result")
		out     = flag.String("o", "", "output path (extension selects json or csv; default stdout as json)")
		rounds  = flag.Int("rounds", 1024, "rounds for generated workloads")
		seed    = flag.Uint64("seed", 1, "generator seed")
		delta   = flag.Int("delta", 8, "reconfiguration cost Δ")
		load    = flag.Float64("load", 6, "offered load for stochastic workloads")
		n       = flag.Int("n", 8, "n parameter for appendix constructions")
		j       = flag.Int("j", 6, "j parameter for appendix constructions")
		k       = flag.Int("k", 8, "k parameter for appendix constructions")

		polName     = flag.String("policy", "dlruedf", "policy for -play: dlruedf | adaptive | dlru | edf | seqedf | hysteresis | greedy | never")
		metrics     = flag.Bool("metrics", false, "with -play: print latency/occupancy histograms")
		traceEvents = flag.String("trace-events", "", "with -play: write per-round engine events as JSON lines to this file")
	)
	flag.Parse()

	switch {
	case *gen != "":
		inst, err := generate(*gen, *rounds, *seed, *delta, *load, *n, *j, *k)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(inst, *out); err != nil {
			fatal(err)
		}
	case *convert != "":
		inst, err := readTrace(*convert)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(inst, *out); err != nil {
			fatal(err)
		}
	case *stat != "":
		inst, err := readTrace(*stat)
		if err != nil {
			fatal(err)
		}
		printStats(inst)
	case *play != "":
		inst, err := readTrace(*play)
		if err != nil {
			fatal(err)
		}
		if err := playTrace(inst, *polName, *n, *metrics, *traceEvents); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name string, rounds int, seed uint64, delta int, load float64, n, j, k int) (*sched.Instance, error) {
	return workload.ByName(name, workload.Params{
		Seed: seed, Delta: delta, Rounds: rounds, Load: load, N: n, J: j, K: k,
	})
}

func readTrace(path string) (*sched.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	return trace.ReadJSON(f)
}

func writeTrace(inst *sched.Instance, path string) error {
	if path == "" {
		return trace.WriteJSON(os.Stdout, inst)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.WriteCSV(f, inst)
	}
	return trace.WriteJSON(f, inst)
}

// playTrace feeds the instance's arrival batches round by round through a
// Stream — the same path a live deployment would use — then drains the
// backlog and prints the Result plus any requested sink reports.
func playTrace(inst *sched.Instance, polName string, n int, metrics bool, eventPath string) error {
	pol, err := playPolicy(polName)
	if err != nil {
		return err
	}

	var probes sched.MultiProbe
	var sink *sched.MetricsSink
	if metrics {
		sink = sched.NewMetricsSink(inst.MaxDelay(), 4*inst.MaxDelay()*n)
		probes = append(probes, sink)
	}
	var ew *trace.EventWriter
	if eventPath != "" {
		f, err := os.Create(eventPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ew = trace.NewEventWriter(f)
		probes = append(probes, ew)
	}
	var probe sched.Probe
	switch len(probes) {
	case 0:
	case 1:
		probe = probes[0]
	default:
		probe = probes
	}

	st, err := sched.NewStream(pol, sched.StreamConfig{
		N: n, Delta: inst.Delta, Delays: inst.Delays, Probe: probe,
	})
	if err != nil {
		return err
	}
	for r := 0; r < inst.NumRounds(); r++ {
		var req sched.Request
		if r < len(inst.Requests) {
			req = inst.Requests[r]
		}
		if _, err := st.Step(req); err != nil {
			return err
		}
	}
	if _, err := st.Drain(); err != nil {
		return err
	}
	res := st.Result()
	fmt.Printf("played %s through %s (n=%d)\n", inst.Name, res.Policy, n)
	fmt.Println(res)
	if sink != nil {
		if err := sink.Report(os.Stdout); err != nil {
			return err
		}
	}
	if ew != nil {
		if err := ew.Err(); err != nil {
			return err
		}
	}
	return nil
}

func playPolicy(name string) (sched.Policy, error) {
	switch name {
	case "dlruedf":
		return core.NewDLRUEDF(), nil
	case "adaptive":
		return core.NewDLRUEDF(core.WithAdaptiveSplit()), nil
	case "dlru":
		return policy.NewDLRU(), nil
	case "edf":
		return policy.NewEDF(), nil
	case "seqedf":
		return policy.NewSeqEDF(), nil
	case "hysteresis":
		return policy.NewHysteresis(1), nil
	case "greedy":
		return policy.NewGreedyPending(), nil
	case "never":
		return policy.NewNever(), nil
	}
	return nil, fmt.Errorf("unknown policy %q for -play", name)
}

func printStats(inst *sched.Instance) {
	fmt.Printf("name:    %s\n", inst.Name)
	fmt.Printf("Δ:       %d\n", inst.Delta)
	fmt.Printf("colors:  %d\n", inst.NumColors())
	fmt.Printf("rounds:  %d (horizon %d)\n", inst.NumRounds(), inst.Horizon())
	fmt.Printf("jobs:    %d\n", inst.TotalJobs())
	fmt.Printf("batched: %v   rate-limited: %v   pow2 delays: %v\n",
		inst.IsBatched(), inst.IsRateLimited(), inst.HasPowerOfTwoDelays())

	per := inst.JobsPerColor()
	type row struct{ c, jobs int }
	var rows []row
	for c, jobs := range per {
		if jobs > 0 {
			rows = append(rows, row{c, jobs})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].jobs > rows[j].jobs })
	if len(rows) > 10 {
		rows = rows[:10]
	}
	tab := stats.NewTable("top colors", "color", "delay", "jobs")
	for _, r := range rows {
		tab.AddRow(r.c, inst.Delays[r.c], r.jobs)
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrtrace:", err)
	os.Exit(1)
}
