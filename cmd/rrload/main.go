// Command rrload drives an rrserved server with many concurrent
// tenants, each replaying an independent per-tenant variant of a named
// workload family (internal/workload), and reports throughput, shed
// rates and per-submit latency quantiles. With -verify it replays every
// trace locally afterwards and requires the server's final results to
// be bit-identical — the end-to-end check that the server lost and
// duplicated nothing.
//
// Usage:
//
//	rrload -addr 127.0.0.1:7145                  # 64 tenants, router workload
//	rrload -tenants 128 -rounds 2048 -rate 500   # paced at 500 rounds/s/tenant
//	rrload -policy edf -workload bursty -verify  # verify bit-identical results
//	rrload -pipeline 64 -batch 16                # pipelined + batched submits (protocol v2)
//	rrload -res-rate 0.01 -res-delay 32          # BDR reservation per tenant (protocol v6,
//	                                             # needs rrserved -bdr; rejected reservations
//	                                             # fall back to best-effort and are counted)
//	rrload -json                                 # machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7145", "rrserved address")
		tenants  = flag.Int("tenants", 64, "concurrent tenants")
		wl       = flag.String("workload", "router", "workload family (see internal/workload)")
		policy   = flag.String("policy", "dlruedf", "tenant policy spec")
		n        = flag.Int("n", 8, "machines per tenant stream")
		delta    = flag.Int("delta", 0, "reconfiguration delay (0 = workload default)")
		rounds   = flag.Int("rounds", 1024, "trace length per tenant")
		load     = flag.Float64("load", 0, "offered load parameter (0 = workload default)")
		seed     = flag.Uint64("seed", 1, "workload seed basis")
		queueCap = flag.Int("queue-cap", 0, "per-tenant queue cap (0 = server default)")
		rate     = flag.Float64("rate", 0, "target rounds/sec per tenant (0 = unpaced)")
		pipeline = flag.Int("pipeline", 0, "submit frames in flight per tenant (0/1 = strict request/response)")
		batch    = flag.Int("batch", 1, "consecutive rounds per submit frame")
		resRate  = flag.Float64("res-rate", 0, "BDR reservation rate per tenant (0 = best-effort)")
		resDelay = flag.Float64("res-delay", 0, "BDR reservation delay bound in rounds")
		verify   = flag.Bool("verify", false, "verify results bit-identical against local replays")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet || *jsonOut {
		logf = func(string, ...any) {}
	}
	rep, err := serve.RunLoad(serve.LoadConfig{
		Addr:     *addr,
		Tenants:  *tenants,
		Workload: *wl,
		Params:   workload.Params{Seed: *seed, Delta: *delta, Rounds: *rounds, Load: *load},
		Policy:   *policy,
		N:        *n,
		QueueCap: *queueCap,
		Rate:     *rate,
		Pipeline: *pipeline,
		Batch:    *batch,
		ResRate:  *resRate,
		ResDelay: *resDelay,
		Verify:   *verify,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("tenants %d  rounds/tenant %d  elapsed %.2fs\n",
			rep.Tenants, rep.RoundsPerTenant, rep.ElapsedSec)
		if rep.Pipeline > 1 || rep.Batch > 1 {
			fmt.Printf("pipeline window %d  batch %d\n", rep.Pipeline, rep.Batch)
		}
		fmt.Printf("rounds sent %d (%.0f/s aggregate, target %.0f/s/tenant)  jobs %d\n",
			rep.RoundsSent, rep.AchievedRate, rep.TargetRate, rep.JobsSent)
		fmt.Printf("sheds by cause: ring %d  admission %d  draining %d  |  resumes %d  reconnects %d\n",
			rep.Overloads, rep.AdmissionRejects, rep.DrainingRejects, rep.Resumes, rep.Reconnects)
		fmt.Printf("submit latency ms  p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n",
			rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
		fmt.Printf("executed %d  dropped %d  reconfigs %d  cost %d+%d\n",
			rep.Executed, rep.Dropped, rep.Reconfigs, rep.CostReconfig, rep.CostDrop)
		if rep.WorstDelayTenant != "" {
			fmt.Printf("worst delay factor %.3f (%s)  service share min %.4f  max %.4f\n",
				rep.WorstDelayFactor, rep.WorstDelayTenant, rep.ServiceShareMin, rep.ServiceShareMax)
		} else if rep.SchedReadoutDegraded {
			fmt.Printf("sched readout degraded: pre-v3 server, no delay-factor/share stats; worst backlog %d (%s)\n",
				rep.WorstBacklog, rep.WorstBacklogTenant)
		}
	}
	if *verify {
		if len(rep.Mismatches) > 0 {
			fmt.Fprintf(os.Stderr, "verify FAILED: %d tenants differ from local replay: %v\n",
				len(rep.Mismatches), rep.Mismatches)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("verify OK: all %d tenant results bit-identical to local replay\n", rep.Tenants)
		}
	}
}
