// Command rrsim runs one scheduling policy on one workload and prints the
// cost breakdown, per-color statistics, an optional ASCII Gantt chart of
// the schedule, and the certified offline lower bound.
//
// Usage:
//
//	rrsim -workload router -policy dlruedf -n 16 -rounds 2048 -load 6
//	rrsim -workload appendixA -policy dlru -n 8 -j 6 -k 8
//	rrsim -workload zipf -policy solve -n 16 -m 2 -lb
//	rrsim -workload thrashing -policy edf -n 8 -gantt 64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	rrs "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "router", fmt.Sprintf("workload: %v", workload.Names()))
		policyName   = flag.String("policy", "dlruedf", "policy: dlruedf | adaptive | solve | distribute | dlru | edf | seqedf | hysteresis | greedy | never | static")
		n            = flag.Int("n", 16, "online resources")
		m            = flag.Int("m", 2, "offline reference resources (for -lb)")
		delta        = flag.Int("delta", 8, "reconfiguration cost Δ")
		rounds       = flag.Int("rounds", 2048, "workload rounds")
		seed         = flag.Uint64("seed", 1, "generator seed")
		load         = flag.Float64("load", 6, "offered load (jobs/round) for stochastic workloads")
		j            = flag.Int("j", 6, "Appendix A/B parameter j")
		k            = flag.Int("k", 8, "Appendix A/B parameter k")
		gap          = flag.Int("gap", 32, "idle gap for the thrashing workload")
		lb           = flag.Bool("lb", false, "also print the certified lower bound with m resources")
		perColor     = flag.Bool("colors", false, "print per-color executed/dropped table")
		gantt        = flag.Int("gantt", 0, "render a Gantt chart of the first N rounds (direct policies only)")
		analyze      = flag.Int("analyze", 0, "print a windowed timeline with the given window width and a per-QoS-class breakdown (direct policies only)")
		metrics      = flag.Bool("metrics", false, "print engine metrics: latency/occupancy histograms (direct policies only)")
		traceEvents  = flag.String("trace-events", "", "write per-round engine events as JSON lines to this file (direct policies only)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint the run every N rounds (direct policies only; 0 = off)")
		ckptPath     = flag.String("checkpoint", "rrsim.ckpt", "checkpoint file written by -checkpoint-every")
		resumePath   = flag.String("resume", "", "resume a run from this checkpoint file instead of starting fresh")
	)
	flag.Parse()

	inst, err := workload.ByName(*workloadName, workload.Params{
		Seed: *seed, Delta: *delta, Rounds: *rounds, Load: *load,
		N: *n, J: *j, K: *k, Gap: *gap,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d colors, %d rounds, %d jobs, Δ=%d\n",
		inst.Name, inst.NumColors(), inst.NumRounds(), inst.TotalJobs(), inst.Delta)

	// Assemble the observability probe requested by -metrics/-trace-events.
	var probes sched.MultiProbe
	var metricsSink *sched.MetricsSink
	if *metrics {
		metricsSink = sched.NewMetricsSink(inst.MaxDelay(), 4*inst.MaxDelay()*(*n))
		probes = append(probes, metricsSink)
	}
	var eventWriter *trace.EventWriter
	if *traceEvents != "" {
		f, err := os.Create(*traceEvents)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		eventWriter = trace.NewEventWriter(f)
		probes = append(probes, eventWriter)
	}
	var probe sched.Probe
	if len(probes) == 1 {
		probe = probes[0]
	} else if len(probes) > 1 {
		probe = probes
	}

	var res *rrs.Result
	if *ckptEvery > 0 || *resumePath != "" {
		if *gantt > 0 || *analyze > 0 {
			fatal(fmt.Errorf("-checkpoint-every/-resume run via the stream engine, which records no schedule; drop -gantt/-analyze"))
		}
		res, err = runStreamed(*policyName, inst, *n, *ckptEvery, *ckptPath, *resumePath, probe)
	} else {
		res, err = runPolicy(*policyName, inst, *n, *gantt > 0 || *analyze > 0, probe)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)

	if metricsSink != nil {
		if metricsSink.Rounds == 0 {
			fmt.Println("(no engine metrics for this policy mode; -metrics needs a direct policy)")
		} else if err := metricsSink.Report(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if eventWriter != nil {
		if err := eventWriter.Err(); err != nil {
			fatal(err)
		}
	}

	if *analyze > 0 {
		if res.Schedule == nil {
			fmt.Println("(no schedule recorded for this policy mode; -analyze needs a direct policy)")
		} else {
			ws, err := analysis.Timeline(inst.Clone(), res.Schedule, *analyze)
			if err != nil {
				fatal(err)
			}
			if err := analysis.TimelineTable(ws, "timeline").Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if err := analysis.ClassTable(analysis.ByDelayClass(inst, res), "per delay class").Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *gantt > 0 {
		if res.Schedule == nil {
			fmt.Println("(no schedule recorded for this policy mode; -gantt needs a direct policy)")
		} else if err := res.Schedule.RenderGantt(os.Stdout, 0, *gantt); err != nil {
			fatal(err)
		}
	}
	if *lb {
		b := offline.LowerBound(inst.Clone(), *m)
		fmt.Printf("certified LB (m=%d): %d  (ParEDF drops=%d, per-color Δ bound=%d)\n",
			*m, b.Value(), b.ParEDFDrops, b.ColorCost)
		fmt.Printf("cost ratio vs LB: %.3f\n", float64(res.Cost.Total())/float64(max64(b.Value(), 1)))
	}
	if *perColor {
		printColors(inst, res)
	}
}

func runPolicy(name string, inst *rrs.Instance, n int, record bool, probe sched.Probe) (*rrs.Result, error) {
	switch name {
	case "solve":
		return core.Solve(inst, n)
	case "distribute":
		return core.Distribute(inst, n)
	case "static":
		return offline.StaticCost(inst, offline.BestStaticColors(inst, n), n)
	}
	pol, err := newDirectPolicy(name)
	if err != nil {
		return nil, err
	}
	return sched.Run(inst, pol, sched.Options{N: n, Record: record, Probe: probe})
}

// newDirectPolicy builds a fresh instance of one of the policies the
// round engine can drive directly (everything except the layered
// solve/distribute/static modes).
func newDirectPolicy(name string) (sched.Policy, error) {
	switch name {
	case "dlruedf":
		return core.NewDLRUEDF(), nil
	case "adaptive":
		return core.NewDLRUEDF(core.WithAdaptiveSplit()), nil
	case "dlru":
		return policy.NewDLRU(), nil
	case "edf":
		return policy.NewEDF(), nil
	case "seqedf":
		return policy.NewSeqEDF(), nil
	case "hysteresis":
		return policy.NewHysteresis(1), nil
	case "greedy":
		return policy.NewGreedyPending(), nil
	case "never":
		return policy.NewNever(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// runStreamed drives the instance through the Stream front-end so the
// run can be checkpointed every N rounds and resumed after a crash. A
// resumed run continues from the checkpoint's round and produces the
// same Result the uninterrupted run would (the engine's deterministic-
// resume guarantee), so -resume composes with -checkpoint-every to
// survive repeated interruptions.
func runStreamed(name string, inst *rrs.Instance, n, every int, ckpt, resume string, probe sched.Probe) (*rrs.Result, error) {
	pol, err := newDirectPolicy(name)
	if err != nil {
		return nil, err
	}
	if every < 0 {
		return nil, fmt.Errorf("-checkpoint-every must be ≥ 0, got %d", every)
	}
	inst = inst.Normalize()
	var st *sched.Stream
	if resume != "" {
		st, err = trace.LoadCheckpoint(resume, pol, probe)
		if err != nil {
			return nil, err
		}
		fmt.Printf("resumed %s from %s at round %d\n", pol.Name(), resume, st.Round())
	} else {
		st, err = sched.NewStream(pol, sched.StreamConfig{
			N: n, Delta: inst.Delta, Delays: inst.Delays, Probe: probe,
		})
		if err != nil {
			return nil, err
		}
	}
	saved := 0
	for st.Round() < inst.NumRounds() || st.TotalPending() > 0 {
		var req sched.Request
		if r := st.Round(); r < inst.NumRounds() {
			req = inst.Requests[r]
		}
		if _, err := st.Step(req); err != nil {
			return nil, err
		}
		if every > 0 && st.Round()%every == 0 {
			if err := trace.SaveCheckpoint(ckpt, st); err != nil {
				return nil, err
			}
			saved++
		}
	}
	if every > 0 {
		// Final checkpoint so the finished state is durable too.
		if err := trace.SaveCheckpoint(ckpt, st); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %d checkpoints to %s\n", saved+1, ckpt)
	}
	return st.Result(), nil
}

func printColors(inst *rrs.Instance, res *rrs.Result) {
	per := inst.JobsPerColor()
	type row struct{ c, jobs, exec, drop int }
	var rows []row
	for c := range per {
		if per[c] > 0 {
			rows = append(rows, row{c, per[c], res.ExecByColor[c], res.DropsByColor[c]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].jobs > rows[j].jobs })
	tab := stats.NewTable("per-color", "color", "delay", "jobs", "executed", "dropped")
	for _, r := range rows {
		tab.AddRow(r.c, inst.Delays[r.c], r.jobs, r.exec, r.drop)
	}
	if err := tab.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrsim:", err)
	os.Exit(1)
}
