// Command rrserved hosts many tenants — each an independent streaming
// scheduler (internal/sched.Stream) with its own policy — behind the
// length-prefixed binary protocol of internal/serve (docs/SERVER.md).
//
// Usage:
//
//	rrserved                          # listen on 127.0.0.1:7145, in-memory only
//	rrserved -addr :7145 -ckpt state  # durable: checkpoints in state/, recovered
//	                                  # automatically on restart
//	rrserved -ckpt-mode files         # one fsynced .ckpt file per tenant instead
//	                                  # of the default group-commit segment log
//	rrserved -ckpt-adaptive           # pace checkpoints from measured costs
//	rrserved -round-interval 10ms     # pace rounds instead of applying eagerly
//	rrserved -allocator fifo          # legacy drain-in-scan-order cross-tenant order
//	rrserved -stats-every 10s         # periodic scheduling summary log line
//	rrserved -bdr                     # bounded-delay admission control: tenants may
//	                                  # reserve (rate, delay) pairs, checked against
//	                                  # the machine's supply bound before admission
//	rrserved -bdr -machine-rate 8 -shard-rate 1   # explicit capacity model
//
// Durable mode defaults to the group-commit checkpoint log
// (docs/CHECKPOINT.md): all tenants' checkpoints are appended to shared
// segment files and one background fsync per -ckpt-commit-interval
// covers every append in the window, so checkpoint cost stays flat as
// tenant counts grow. -ckpt-mode files restores the one-file-per-tenant
// backend, which pays one fsync per checkpoint.
//
// Which backlogged tenant a worker serves next is the cross-tenant
// allocator's decision (-allocator, -alloc-quantum, -alloc-escalation);
// see docs/SCHEDULING.md for the model and tuning guidance.
//
// With -bdr the server additionally runs bounded-delay-reservation
// admission control (docs/SCHEDULING.md "Admission"): a tenant may
// declare a (rate, delay) reservation at open, the server checks it
// against the shard's residual supply bound and either guarantees it —
// the fractional-share controller clamps the tenant's scheduling weight
// and per-pass budget so the guarantee holds under any competing load —
// or rejects the open with a typed admission error carrying the
// residual capacity. -machine-rate/-machine-delay and
// -shard-rate/-shard-delay set the capacity model; the defaults derive
// a machine rate equal to the shard count split evenly across shards.
//
// SIGTERM or SIGINT drains gracefully: the server stops admitting work,
// applies every queued round tick, writes a final checkpoint per tenant
// and then exits; a second signal forces immediate exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7145", "TCP listen address")
		ckptDir      = flag.String("ckpt", "", "checkpoint directory (empty = no durability)")
		ckptEvery    = flag.Int("checkpoint-every", 64, "rounds between periodic per-tenant checkpoints")
		ckptMode     = flag.String("ckpt-mode", "", "durability backend: log (group-commit segments, the default) or files (one .ckpt per tenant)")
		ckptCommit   = flag.Duration("ckpt-commit-interval", 0, "group-commit fsync interval in log mode (0 = default 2ms)")
		ckptSegBytes = flag.Int("ckpt-segment-bytes", 0, "log segment size before rotation (0 = default 4MiB)")
		ckptAdaptive = flag.Bool("ckpt-adaptive", false, "pace checkpoints adaptively from measured snapshot/apply costs (log mode)")
		ckptPaceMin  = flag.Int("ckpt-pace-min", 0, "adaptive pacing floor in rounds (0 = default 1)")
		ckptPaceMax  = flag.Int("ckpt-pace-max", 0, "adaptive pacing ceiling in rounds (0 = default 1024)")
		interval     = flag.Duration("round-interval", 0, "pace round application (0 = apply eagerly)")
		shards       = flag.Int("shards", 0, "round-engine worker shards (0 = GOMAXPROCS, capped at 16)")
		maxTen       = flag.Int("max-tenants", 0, "live tenant limit (0 = default 4096)")
		queueCap     = flag.Int("queue-cap", 0, "default per-tenant queue cap (0 = default 64)")
		connWin      = flag.Int("conn-window", 0, "staged responses per connection before the reader blocks (0 = default 256)")
		alloc        = flag.String("allocator", "", "cross-tenant allocator: wdrr or fifo (empty = wdrr)")
		allocQ       = flag.Int("alloc-quantum", 0, "wdrr rounds per pick per unit weight (0 = default 8)")
		allocEsc     = flag.Float64("alloc-escalation", 0, "delay factor that escalates a tenant (0 = default 0.5, negative disables)")
		statsInt     = flag.Duration("stats-every", 0, "log a scheduling summary at this interval (0 = off)")
		bdrOn        = flag.Bool("bdr", false, "enable bounded-delay-reservation admission control")
		machineRate  = flag.Float64("machine-rate", 0, "BDR machine service rate in rounds per pass (0 = shard count)")
		machineDelay = flag.Float64("machine-delay", 0, "BDR machine-level delay bound in rounds")
		shardRate    = flag.Float64("shard-rate", 0, "BDR per-shard service rate (0 = machine-rate/shards)")
		shardDelay   = flag.Float64("shard-delay", 0, "BDR per-shard delay bound (0 = machine-delay+1)")
		quiet        = flag.Bool("quiet", false, "suppress operational log lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := serve.NewServer(serve.Config{
		Addr:               *addr,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		CkptMode:           *ckptMode,
		CkptCommitInterval: *ckptCommit,
		CkptSegmentBytes:   *ckptSegBytes,
		CkptAdaptive:       *ckptAdaptive,
		CkptPaceMin:        *ckptPaceMin,
		CkptPaceMax:        *ckptPaceMax,
		RoundInterval:      *interval,
		Shards:             *shards,
		MaxTenants:         *maxTen,
		DefaultQueueCap:    *queueCap,
		ConnWindow:         *connWin,
		Allocator:          *alloc,
		AllocQuantum:       *allocQ,
		AllocEscalation:    *allocEsc,
		BDR:                *bdrOn,
		MachineRate:        *machineRate,
		MachineDelay:       *machineDelay,
		ShardRate:          *shardRate,
		ShardDelay:         *shardDelay,
		Logf:               logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logf("rrserved: listening on %s (%d tenants recovered)", srv.Addr(), srv.NumTenants())

	// The logger goroutine is joined to the server's worker group, so it
	// stops — and cannot log — once Shutdown begins (the old inline
	// ticker goroutine leaked past shutdown and could log after close).
	srv.StartStatsLogger(*statsInt)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		logf("rrserved: %v: draining (again to force exit)", sig)
		go func() {
			<-sigs
			logf("rrserved: forced exit")
			os.Exit(1)
		}()
		start := time.Now()
		if err := srv.Shutdown(); err != nil {
			logf("rrserved: drain: %v", err)
			os.Exit(1)
		}
		logf("rrserved: drained in %v", time.Since(start).Round(time.Millisecond))
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Serve returns once the listener closes; wait for the drain started
	// by the signal handler to finish flushing before exiting.
	_ = srv.Shutdown()
}
