// Command docscheck keeps the documentation from drifting: it resolves
// every relative markdown link in README.md and docs/*.md against the
// working tree, and requires a doc comment on every exported
// declaration of internal/serve (the package whose API the server docs
// describe). It prints each violation and exits non-zero if there are
// any; `make docscheck` wires it into `make check` and CI.
//
// Usage:
//
//	docscheck [-root DIR]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	bad := 0
	bad += checkLinks(*root)
	bad += checkDocComments(filepath.Join(*root, "internal", "serve"))
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("docscheck: OK")
}

// linkRe matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope; the repo doesn't use them.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks resolves every relative link in README.md and docs/*.md
// against the tree and reports targets that don't exist.
func checkLinks(root string) int {
	files := []string{filepath.Join(root, "README.md")}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	files = append(files, docs...)

	bad := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			bad++
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external; existence is not ours to check
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue // pure in-page anchor
				}
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q\n", f, i+1, m[1])
					bad++
				}
			}
		}
	}
	return bad
}

// checkDocComments parses every non-test file of the package directory
// and reports exported declarations without a doc comment. A const or
// var block's comment covers the whole block; a field or interface
// method is covered by its parent type's comment.
func checkDocComments(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 1
	}

	bad := 0
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s has no doc comment\n", p.Filename, p.Line, what)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !hasUnexportedRecv(d) {
						report(d.Pos(), "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					blockDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && sp.Doc == nil && !blockDoc {
								report(sp.Pos(), "type "+sp.Name.Name)
							}
						case *ast.ValueSpec:
							if blockDoc || sp.Doc != nil || sp.Comment != nil {
								continue
							}
							for _, n := range sp.Names {
								if n.IsExported() {
									report(n.Pos(), d.Tok.String()+" "+n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad
}

// hasUnexportedRecv reports whether f is a method on an unexported
// type: exported methods of unexported types aren't part of the
// package's godoc surface.
func hasUnexportedRecv(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return false
	}
	t := f.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return !id.IsExported()
	}
	return false
}
