// Command rrproxy is the scale-out router tier in front of a fleet of
// rrserved backends (internal/proxy): it speaks the client protocol on
// the front, shards tenants across the backends by rendezvous hashing
// on tenant ID, fans out fleet-wide requests (ping, all-tenant stats),
// and — with -standby — tees every mutating frame to a warm-standby
// backend so a dead primary fails over by resuming from the standby's
// state instead of rewinding clients. See docs/SERVER.md "Fleet".
//
// Usage:
//
//	rrproxy -backends 127.0.0.1:7145,127.0.0.1:7146
//	rrproxy -addr :7200 -backends host1:7145,host2:7145 -standby host3:7145
//	rrproxy -tee-buffer 8192          # deeper standby tee buffer
//
// SIGTERM or SIGINT stops the proxy after flushing the standby tee.
// Live migration (moving one tenant between backends) is driven through
// the embedding API, proxy.(*Proxy).Migrate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/proxy"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7200", "TCP listen address")
		backends = flag.String("backends", "", "comma-separated rrserved backend addresses (required)")
		standby  = flag.String("standby", "", "warm-standby rrserved address (empty = no standby)")
		teeBuf   = flag.Int("tee-buffer", 0, "standby tee frame buffer (0 = default 4096)")
		quiet    = flag.Bool("quiet", false, "suppress operational log lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	px, err := proxy.New(proxy.Config{
		Addr:      *addr,
		Backends:  list,
		Standby:   *standby,
		TeeBuffer: *teeBuf,
		Logf:      logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logf("rrproxy: listening on %s, %d backends, standby %q", px.Addr(), len(list), *standby)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		logf("rrproxy: %v: stopping (again to force exit)", sig)
		go func() {
			<-sigs
			logf("rrproxy: forced exit")
			os.Exit(1)
		}()
		px.Close()
	}()

	if err := px.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	px.Close()
	if n := px.TeeDropped(); n > 0 {
		logf("rrproxy: standby tee dropped %d frames over the run", n)
	}
}
