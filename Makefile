# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test race cover bench benchsmoke check experiments fmt vet clean

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem -run '^$$' ./...

# One iteration of every benchmark: a fast smoke test that the benchmark
# harness still compiles and runs (not a measurement).
benchsmoke:
	go test -bench=. -benchtime=1x -benchmem -run '^$$' ./...

# The pre-commit gate: static analysis plus the full test suite under the
# race detector.
check: vet race

# Regenerate every experiment table/figure (DESIGN.md §3) and refresh the
# data section of EXPERIMENTS.md.
experiments:
	go run ./cmd/rrbench -md experiments_generated.md

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
	rm -f experiments_generated.md
