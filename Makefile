# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test race race-hot cover bench bench-json benchsmoke faultsmoke durasmoke bdrsmoke optsmoke servesmoke proxysmoke docscheck check experiments fmt vet clean

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The hot-path packages (round engine, parallel sweep runner, exact
# solver) under the race detector with fresh (uncached) runs — the fast
# pre-commit subset. The offline package runs in -short mode: the full
# differential corpus under the race detector belongs to `make race`.
race-hot:
	go test -race -count=1 ./internal/sched/ ./internal/exp/ ./internal/serve/ ./internal/proxy/ ./internal/ckptlog/ ./internal/bdr/
	go test -race -count=1 -short ./internal/offline/

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem -run '^$$' ./...

# Measure the fixed regression suite and write BENCH_$(BENCH_LABEL).json
# (see docs/PERFORMANCE.md). Compare two files with:
#   go run ./cmd/rrbench -compare old.json new.json
BENCH_LABEL ?= local
BENCHTIME ?= 1s
bench-json:
	go run ./cmd/rrbench -json -label $(BENCH_LABEL) -benchtime $(BENCHTIME)

# One iteration of every benchmark plus an end-to-end run of the JSON
# emitter and comparator (self-compare doubles as a schema validation):
# a fast smoke test that the harnesses still compile and run, not a
# measurement.
benchsmoke:
	go test -bench=. -benchtime=1x -benchmem -run '^$$' ./...
	go run ./cmd/rrbench -json -label smoke -benchtime 10ms -out /tmp/BENCH_smoke.json
	go run ./cmd/rrbench -compare /tmp/BENCH_smoke.json /tmp/BENCH_smoke.json
	rm -f /tmp/BENCH_smoke.json

# The crash-fault-injection harness for the checkpoint/restore subsystem
# (docs/CHECKPOINT.md): kill a stream at every round, restore it, finish
# the trace, require a bit-identical Result — for every policy — plus
# corruption/mismatch rejection. Fresh runs, never cached.
faultsmoke:
	go test -run 'TestFaultInjection' -count=1 .
	go test -run 'TestCheckpoint' -count=1 ./internal/trace/

# The group-commit durability smoke (docs/CHECKPOINT.md "Group-commit
# log"): the whole ckptlog package fresh — segment framing, recovery
# scans over truncated/corrupted tails, rotation and compaction — plus
# the serve-layer log-mode contracts: tombstones shadowing closed and
# released tenants, compacting restarts, delta-chain recovery and the
# adaptive pacer. Fresh runs, never cached.
durasmoke:
	go test -count=1 ./internal/ckptlog/
	go test -run 'TestCloseTenantLogTombstone|TestReleaseLogTombstone|TestServeLog|TestServeCrashRestartLogSegments|TestServeAdaptivePacing' -count=1 ./internal/serve/

# The admission-control smoke (docs/SCHEDULING.md "Admission (layer
# 0)"): the whole internal/bdr package fresh — SBF feasibility
# properties, the reservation tree, the fractional-share controller —
# plus the serve-layer BDR contracts: typed admission rejection with
# residuals, durable reservations across restarts, migration bounce and
# the deterministic isolation harness. Fresh runs, never cached.
bdrsmoke:
	go test -count=1 ./internal/bdr/
	go test -run 'TestBDR' -count=1 ./internal/serve/
	go test -run 'TestProxyMigrateAdmissionBounce|TestProxyDuraStatsFanout' -count=1 ./internal/proxy/

# The multi-tenant server smoke (docs/SERVER.md): the full serve-layer
# suite fresh — wire codec, admission control and overload shedding, the
# 64-tenant load-generator run verified bit-identical against local
# replays, and both restart harnesses (graceful SIGTERM-style drain and
# crash-fault injection between round ticks, each resumed from
# checkpoints). The fuzz seed corpus runs as part of the same package.
servesmoke:
	go test -count=1 ./internal/serve/

# The fleet smoke (docs/SERVER.md "Fleet"): the rrproxy router tier
# fresh — rendezvous placement stability, stats/ping fan-out, a verified
# load run through the proxy in both driver modes, a live tenant
# migration mid-run, and the 3-backend failover harness that kills a
# primary mid-run and requires bit-identical results via standby replay.
proxysmoke:
	go test -count=1 ./internal/proxy/

# The exact-solver smoke: the branch-and-bound optimum pinned
# bit-identical to the legacy DFS on the differential corpus, at several
# worker counts, plus the wide-key fallback. Fresh runs, never cached.
optsmoke:
	go test -run 'TestSolveExact|TestExactBetweenBounds' -short -count=1 ./internal/offline/

# Documentation drift gate: every relative link in README.md and
# docs/*.md must resolve, and every exported declaration of
# internal/serve must carry a doc comment.
docscheck:
	go run ./cmd/docscheck

# The pre-commit gate: static analysis, the docs drift gate, the
# race-detector subset on the hot-path packages, the fault-injection,
# durability, exact-solver and server harnesses, then the full test
# suite under the race detector.
check: vet docscheck race-hot faultsmoke durasmoke bdrsmoke optsmoke servesmoke proxysmoke race

# Regenerate every experiment table/figure (DESIGN.md §3) and refresh the
# data section of EXPERIMENTS.md.
experiments:
	go run ./cmd/rrbench -md experiments_generated.md

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
	rm -f experiments_generated.md
