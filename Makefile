# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test race cover bench experiments fmt vet clean

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem -run '^$$' ./...

# Regenerate every experiment table/figure (DESIGN.md §3) and refresh the
# data section of EXPERIMENTS.md.
experiments:
	go run ./cmd/rrbench -md experiments_generated.md

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
	rm -f experiments_generated.md
