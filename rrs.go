// Package rrs (reconfigurable resource scheduling) is the public API of
// this repository, a complete implementation of
//
//	"Reconfigurable Resource Scheduling with Variable Delay Bounds",
//	C. G. Plaxton, Y. Sun, M. Tiwari, H. Vin — IPPS 2007.
//
// The model: unit jobs of colored categories arrive over integer rounds;
// a job of color ℓ must be executed on a resource configured with ℓ
// within D_ℓ rounds of its arrival or it is dropped at unit cost;
// reconfiguring a resource costs Δ; minimize total cost.
//
// The paper's contribution is the ΔLRU-EDF online algorithm (NewDLRUEDF)
// — a combination of LRU-style recency caching and EDF-style deadline
// scheduling — together with two reductions (Distribute, VarBatch) that
// lift it from rate-limited batched arrivals to the fully general problem.
// Solve runs the whole layered pipeline and is resource competitive: O(1)
// times the optimal offline cost when given 8× the resources.
//
// # Quick start
//
//	inst := &rrs.Instance{
//	    Delta:  4,                 // reconfiguration cost Δ
//	    Delays: []int{2, 8},       // D_0 = 2, D_1 = 8
//	}
//	inst.AddJobs(0, 1, 8)          // 8 jobs of color 1 at round 0
//	inst.AddJobs(2, 0, 2)          // 2 jobs of color 0 at round 2
//	res, err := rrs.Solve(inst, 8) // run the paper's algorithm, n = 8
//	if err != nil { ... }
//	fmt.Println(res.Cost)          // reconfig + drop breakdown
//
// Baseline policies (ΔLRU, EDF, Seq-EDF, static, greedy), certified
// offline lower bounds, exact brute-force optima for tiny instances,
// workload generators (including the paper's Appendix A/B adversarial
// constructions) and the experiment harness that regenerates every
// figure/table in DESIGN.md are all re-exported below.
//
// # Engine and observability
//
// Both simulation front-ends — Run for recorded instances and Stream for
// the true online setting — drive one shared four-phase round engine, so
// they cannot diverge: identical arrivals produce identical Results,
// including the per-color breakdowns (which always sum to the totals, a
// pinned invariant). The engine emits per-round RoundEvents to an
// optional Probe (Options.Probe / StreamConfig.Probe): CounterSink keeps
// totals, MetricsSink adds latency and backlog-occupancy histograms, and
// NewRoundEventWriter streams JSONL for offline analysis. With no probe
// attached the observability layer performs zero allocations and costs
// nothing.
package rrs

import (
	"io"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/offline"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core model types (see internal/sched for full documentation).
type (
	// Color identifies a job category; NoColor is the initial black state.
	Color = sched.Color
	// Batch is a group of unit jobs of one color arriving together.
	Batch = sched.Batch
	// Request is one round's arrivals.
	Request = sched.Request
	// Instance is a full problem instance: Δ, per-color delay bounds, and
	// the request sequence.
	Instance = sched.Instance
	// Policy is an online reconfiguration scheme driven by the engine.
	Policy = sched.Policy
	// Context is the read-only per-round view a Policy receives.
	Context = sched.Context
	// Env carries the fixed run parameters a Policy is Reset with.
	Env = sched.Env
	// Options configures a simulation run (resources, speed, recording).
	Options = sched.Options
	// Result carries the cost breakdown and statistics of a run.
	Result = sched.Result
	// Cost is the reconfiguration + drop objective.
	Cost = sched.Cost
	// Schedule is an explicit reconfiguration/execution record.
	Schedule = sched.Schedule
)

// NoColor is the initial ("black") configuration of every resource.
const NoColor = sched.NoColor

// Run simulates a policy on an instance. See sched.Run.
func Run(inst *Instance, pol Policy, opts Options) (*Result, error) {
	return sched.Run(inst, pol, opts)
}

// Replay validates an explicit schedule against an instance and returns
// its cost. See sched.Replay.
func Replay(inst *Instance, s *Schedule) (*Result, error) {
	return sched.Replay(inst, s)
}

// Stream types drive a policy one round at a time — the true online
// setting, where arrivals become known only as they happen.
type (
	// Stream is the incremental round-by-round simulator.
	Stream = sched.Stream
	// StreamConfig fixes a Stream's resources, Δ and color universe.
	StreamConfig = sched.StreamConfig
	// StepResult reports one simulated round.
	StepResult = sched.StepResult
)

// NewStream starts an incremental simulation of pol; call Step with each
// round's arrivals and Drain (or DropPending) at the end of the trace.
func NewStream(pol Policy, cfg StreamConfig) (*Stream, error) {
	return sched.NewStream(pol, cfg)
}

// ——— Checkpoint/restore (internal/sched snapshots, internal/trace files) ———

// Snapshotter is the checkpoint/restore capability of a Policy; every
// policy in this repository implements it. Stream.Snapshot serializes a
// live stream (configuration, round engine, cost ledger, pending pool
// and policy state) and RestoreStream rebuilds one that continues
// bit-identically — see docs/CHECKPOINT.md for the format and the
// determinism contract.
type Snapshotter = sched.Snapshotter

// SnapshotVersion is the version tag of the Stream.Snapshot state blob.
const SnapshotVersion = sched.SnapshotVersion

// RestoreStream rebuilds a live Stream from a Stream.Snapshot blob. pol
// must be a fresh policy of the type that produced the snapshot; probe
// (not serialized) is attached to the restored stream. Corrupt input is
// reported as an error, never a panic. See sched.RestoreStream.
func RestoreStream(pol Policy, snapshot []byte, probe Probe) (*Stream, error) {
	return sched.RestoreStream(pol, snapshot, probe)
}

// WriteCheckpoint wraps a Stream.Snapshot blob in the durable container
// format (magic, version, length prefix, CRC-32) on w.
func WriteCheckpoint(w io.Writer, state []byte) error { return trace.WriteCheckpoint(w, state) }

// ReadCheckpoint reads one checkpoint container from r, verifies it and
// returns the state blob for RestoreStream.
func ReadCheckpoint(r io.Reader) ([]byte, error) { return trace.ReadCheckpoint(r) }

// SaveCheckpoint atomically snapshots st to a checkpoint file at path
// (temp file + rename; a crash mid-write preserves the previous file).
func SaveCheckpoint(path string, st *Stream) error { return trace.SaveCheckpoint(path, st) }

// LoadCheckpoint restores a live stream from the checkpoint at path.
func LoadCheckpoint(path string, pol Policy, probe Probe) (*Stream, error) {
	return trace.LoadCheckpoint(path, pol, probe)
}

// ——— Observability (internal/sched probes, internal/trace JSONL) ———

// Observability types: the shared round engine reports each simulated
// round to an attached Probe. See the package comment.
type (
	// Probe receives one RoundEvent per simulated round.
	Probe = sched.Probe
	// RoundEvent summarizes one round: arrivals, drops, executions,
	// reconfigurations, and pending depth.
	RoundEvent = sched.RoundEvent
	// ExecProbe is optionally implemented by probes wanting per-job
	// execution events with queueing latency.
	ExecProbe = sched.ExecProbe
	// MultiProbe fans events out to several probes.
	MultiProbe = sched.MultiProbe
	// CounterSink accumulates totals (cheapest probe).
	CounterSink = sched.CounterSink
	// MetricsSink adds latency/occupancy histogram summaries.
	MetricsSink = sched.MetricsSink
	// RoundEventWriter streams per-round events as JSON Lines.
	RoundEventWriter = trace.EventWriter
)

// NewMetricsSink builds a MetricsSink; maxDelay bounds the latency
// histogram (use Instance.MaxDelay) and depthLimit the backlog one.
func NewMetricsSink(maxDelay, depthLimit int) *MetricsSink {
	return sched.NewMetricsSink(maxDelay, depthLimit)
}

// NewRoundEventWriter returns a Probe that streams every round as one
// JSON line on w; check Err when the run finishes.
func NewRoundEventWriter(w io.Writer) *RoundEventWriter { return trace.NewEventWriter(w) }

// ReadRoundEvents parses a JSON Lines stream written by
// NewRoundEventWriter.
func ReadRoundEvents(r io.Reader) ([]RoundEvent, error) { return trace.ReadEvents(r) }

// ——— The paper's algorithms (internal/core) ———

// DLRUEDFOption configures NewDLRUEDF (capacity split, ablation knobs).
type DLRUEDFOption = core.Option

// NewDLRUEDF returns the ΔLRU-EDF policy of §3.1.3, the paper's core
// contribution: resource competitive for rate-limited batched arrivals
// with n = 8m (Theorem 1).
func NewDLRUEDF(opts ...DLRUEDFOption) Policy { return core.NewDLRUEDF(opts...) }

// Solve runs the complete layered online solver — VarBatch (§5) ∘
// Distribute (§4) ∘ ΔLRU-EDF (§3) — on an arbitrary instance of the main
// problem [Δ | 1 | D_ℓ | 1] with n resources (Theorem 3).
func Solve(inst *Instance, n int) (*Result, error) { return core.Solve(inst, n) }

// Distribute runs the §4.1 reduction (batched → rate-limited) with
// ΔLRU-EDF as the core algorithm on a batched instance (Theorem 2).
func Distribute(inst *Instance, n int) (*Result, error) { return core.Distribute(inst, n) }

// BuildVarBatched exposes the §5.1 arrival-batching transformation.
func BuildVarBatched(inst *Instance) *Instance { return core.BuildVarBatched(inst) }

// ——— Baseline policies (internal/policy) ———

// NewDLRU returns the ΔLRU baseline (§3.1.1; not resource competitive,
// Appendix A).
func NewDLRU() Policy { return policy.NewDLRU() }

// NewEDF returns the EDF baseline (§3.1.2; not resource competitive,
// Appendix B).
func NewEDF() Policy { return policy.NewEDF() }

// NewSeqEDF returns Seq-EDF (§3.3); run it with Options.Speed = 2 for
// DS-Seq-EDF.
func NewSeqEDF() Policy { return policy.NewSeqEDF() }

// NewStatic returns a fixed-configuration policy.
func NewStatic(colors ...Color) Policy { return policy.NewStatic(colors...) }

// NewNever returns the drop-everything policy.
func NewNever() Policy { return policy.NewNever() }

// NewGreedyPending returns the maximally eager (thrashing) baseline.
func NewGreedyPending() Policy { return policy.NewGreedyPending() }

// NewHysteresis returns the Everest-inspired baseline (related work): a
// color is admitted only when its backlog reaches θ·Δ jobs and is kept
// until it repays the switch.
func NewHysteresis(theta float64) Policy { return policy.NewHysteresis(theta) }

// WithAdaptiveSplit makes ΔLRU-EDF self-tune its LRU/EDF capacity split
// from the observed reconfiguration-vs-drop cost mix (an ARC-inspired
// extension beyond the paper; see ablation A5).
func WithAdaptiveSplit() DLRUEDFOption { return core.WithAdaptiveSplit() }

// ——— Offline optima and certified bounds (internal/offline) ———

// OptimalCost computes the exact optimal offline total cost with m
// resources via the parallel branch-and-bound solver with certified
// pruning. maxStates (0 = default) caps the search; see SolveExactOPT for
// the full set of knobs.
func OptimalCost(inst *Instance, m, maxStates int) (int64, error) {
	return offline.BruteForce(inst, m, maxStates)
}

// ExactOptions tunes SolveExactOPT: state budget, worker count (the
// optimum is bit-identical at every worker count) and an optional known
// achievable upper bound that seeds the incumbent.
type ExactOptions = offline.ExactOptions

// SolveExactOPT computes the exact optimal offline total cost with m
// resources by certified branch-and-bound (admissible Par-EDF-tail and
// per-color-Δ suffix bounds, allocation-free undo-stack DFS over a flat
// transposition table, parallel root splitting).
func SolveExactOPT(inst *Instance, m int, opts ExactOptions) (int64, error) {
	return offline.SolveExact(inst, m, opts)
}

// Bracket is a certified two-sided estimate of the offline optimum:
// Lower ≤ OPT ≤ Upper.
type Bracket = offline.Bracket

// BracketOPT brackets the optimal offline cost with m resources on any
// instance: certified lower bound, local-search upper bound, and — when
// the branch-and-bound search fits its budget — the exact optimum
// (Lower == Upper).
func BracketOPT(inst *Instance, m int, searchPasses int) (Bracket, error) {
	return offline.BracketOPT(inst, m, searchPasses)
}

// CertifiedLowerBound returns a proven lower bound on the optimal offline
// total cost with m resources (Par-EDF drop bound + per-color Δ bound),
// computable in near-linear time on any instance.
func CertifiedLowerBound(inst *Instance, m int) int64 {
	return offline.LowerBound(inst, m).Value()
}

// ImproveSchedule runs offline local search on a recorded schedule,
// returning an improved schedule and its cost; the result never costs
// more than the input. Use it to tighten offline upper bounds on OPT.
func ImproveSchedule(inst *Instance, start *Schedule, maxPasses int) (*Schedule, *Result, error) {
	return offline.ImproveSchedule(inst, start, maxPasses)
}

// Punctualize applies the Lemma 5.1–5.3 construction: it transforms an
// arbitrary uni-speed offline schedule into a punctual one with 7× the
// resources that executes exactly the same jobs.
func Punctualize(inst *Instance, s *Schedule) (*Schedule, error) {
	return offline.Punctualize(inst, s)
}

// ——— Workload generators (internal/workload) ———

// AppendixA builds the paper's Appendix A adversarial construction (ΔLRU
// lower bound).
func AppendixA(n, delta, j, k int) (*Instance, error) { return workload.AppendixA(n, delta, j, k) }

// AppendixB builds the paper's Appendix B adversarial construction (EDF
// lower bound).
func AppendixB(n, delta, j, k int) (*Instance, error) { return workload.AppendixB(n, delta, j, k) }

// RouterWorkload builds a multi-service router packet trace with four QoS
// classes (voice/video/web/bulk).
func RouterWorkload(seed uint64, perClass, delta, rounds int, load float64) *Instance {
	return workload.Router(seed, perClass, delta, rounds, load)
}

// DatacenterWorkload builds a shared-data-center trace with diurnal,
// phase-shifted service demands.
func DatacenterWorkload(seed uint64, services, delta, dayRounds, days int, peakRate float64) *Instance {
	return workload.Datacenter(seed, services, delta, dayRounds, days, peakRate)
}

// WorkloadByName builds any of the repository's standard workloads by
// name (see WorkloadNames); the CLI tools use the same constructor.
func WorkloadByName(name string, p WorkloadParams) (*Instance, error) {
	return workload.ByName(name, p)
}

// WorkloadParams parameterizes WorkloadByName.
type WorkloadParams = workload.Params

// WorkloadNames lists the names WorkloadByName accepts.
func WorkloadNames() []string { return workload.Names() }

// ——— Adversary search (internal/adversary) ———

// AdversaryConfig bounds a worst-case search (see internal/adversary).
type AdversaryConfig = adversary.Config

// AdversaryResult is the worst instance found with its certified ratio.
type AdversaryResult = adversary.Result

// FindWorstCase hill-climbs over tiny instances maximizing newPolicy's
// cost ratio against the exact offline optimum. Every reported ratio is
// certified by brute force.
func FindWorstCase(cfg AdversaryConfig, newPolicy func() Policy) (*AdversaryResult, error) {
	return adversary.Search(cfg, func() sched.Policy { return newPolicy() })
}

// ——— Experiment harness (internal/exp) ———

// ExperimentConfig tunes experiment runs (Quick mode, seed, workers).
type ExperimentConfig = exp.Config

// RunExperiment regenerates one DESIGN.md table/figure by ID (F1, F2, F3,
// T1…T9, A1…A4) and renders it to w.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) error {
	e, ok := exp.ByID(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	rep, err := e.Run(cfg)
	if err != nil {
		return err
	}
	return rep.Render(w)
}

// ExperimentIDs lists the registered experiment IDs in order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range exp.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// UnknownExperimentError reports a RunExperiment call with an unregistered
// ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "rrs: unknown experiment " + e.ID + " (see ExperimentIDs)"
}

// ——— Serving: the multi-tenant scheduler server (docs/SERVER.md) ———

// Serving types: rrserved hosts many tenants — each an independent
// Stream with its own policy — behind a length-prefixed binary
// protocol, with per-tenant admission control, periodic checkpointing
// and crash recovery. See internal/serve for full documentation.
type (
	// ServeConfig configures a Server (address, checkpoint directory,
	// round pacing, queue caps).
	ServeConfig = serve.Config
	// Server is the multi-tenant scheduler server behind cmd/rrserved.
	Server = serve.Server
	// ServeClient is one connection to a Server.
	ServeClient = serve.Client
	// TenantConfig names the policy and stream configuration a tenant
	// runs under.
	TenantConfig = serve.TenantConfig
	// TenantStats is one tenant's monitoring row.
	TenantStats = serve.TenantStats
	// LoadConfig parameterizes RunLoad, the load generator behind
	// cmd/rrload.
	LoadConfig = serve.LoadConfig
	// LoadReport summarizes a RunLoad: throughput, shed/resume counts,
	// latency quantiles, aggregated results.
	LoadReport = serve.LoadReport
	// BadSeqError reports an out-of-sequence Submit, carrying the
	// tenant's resume point.
	BadSeqError = serve.BadSeqError
	// Pipeline keeps a bounded window of tagged submits in flight on
	// one ServeClient connection (protocol v2); see
	// ServeClient.NewPipeline.
	Pipeline = serve.Pipeline
	// SubmitResult is one acknowledgement delivered to a Pipeline's
	// callback: what was admitted, where to resume, round-trip time.
	SubmitResult = serve.SubmitResult
)

// Admission-control and lifecycle errors a ServeClient surfaces; test
// with errors.Is.
var (
	ErrOverloaded = serve.ErrOverloaded
	ErrDraining   = serve.ErrDraining
)

// NewServer prepares a server: recovers every tenant found in the
// checkpoint directory, binds the listener, starts the round workers.
// Call Serve to accept connections; Shutdown drains gracefully.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.NewServer(cfg) }

// DialServer connects to an rrserved server.
func DialServer(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// RunLoad drives many concurrent tenants against a server, riding out
// overload shedding and restarts, and optionally verifies the results
// bit-identical against local replays.
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return serve.RunLoad(cfg) }

// ServePolicySpecs lists the policy spec strings a tenant may be opened
// with ("dlruedf", "edf", "adaptive", …).
func ServePolicySpecs() []string { return serve.PolicySpecs() }
