package rrs

import (
	"bytes"
	"testing"

	"repro/internal/offline"
	"repro/internal/trace"
)

// TestEmptyInstanceEverywhere pushes a job-free instance through every
// major API surface: nothing may error, every cost must be zero.
func TestEmptyInstanceEverywhere(t *testing.T) {
	inst := &Instance{Name: "empty", Delta: 3, Delays: []int{2, 8}}

	for _, pol := range []Policy{NewDLRUEDF(), NewDLRU(), NewEDF(), NewSeqEDF(), NewNever(), NewGreedyPending(), NewHysteresis(1)} {
		res, err := Run(inst.Clone(), pol, Options{N: 8})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Cost.Total() != 0 || res.Executed != 0 {
			t.Fatalf("%s: nonzero result on empty instance: %v", pol.Name(), res)
		}
	}

	if res, err := Solve(inst.Clone(), 8); err != nil || res.Cost.Total() != 0 {
		t.Fatalf("Solve on empty: %v, %v", res, err)
	}
	if res, err := Distribute(inst.Clone(), 8); err != nil || res.Cost.Total() != 0 {
		t.Fatalf("Distribute on empty: %v, %v", res, err)
	}
	if opt, err := OptimalCost(inst.Clone(), 1, 0); err != nil || opt != 0 {
		t.Fatalf("OptimalCost on empty: %d, %v", opt, err)
	}
	if lb := CertifiedLowerBound(inst.Clone(), 1); lb != 0 {
		t.Fatalf("CertifiedLowerBound on empty: %d", lb)
	}

	// An empty recorded schedule survives the offline transformations.
	rec, err := Run(inst.Clone(), NewDLRUEDF(), Options{N: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Punctualize(inst.Clone(), rec.Schedule); err != nil {
		t.Fatalf("Punctualize on empty: %v", err)
	}
	if _, err := offline.Aggregate(inst.Clone(), rec.Schedule); err != nil {
		t.Fatalf("Aggregate on empty: %v", err)
	}

	// Trace roundtrip of an empty instance.
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, inst.Clone()); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalJobs() != 0 || back.NumColors() != 2 {
		t.Fatalf("empty roundtrip changed the instance: %+v", back)
	}
}

// TestZeroColorInstance: an instance with no colors at all is legal and
// inert.
func TestZeroColorInstance(t *testing.T) {
	inst := &Instance{Name: "colorless", Delta: 1}
	for _, pol := range []Policy{NewDLRUEDF(), NewEDF(), NewNever()} {
		res, err := Run(inst.Clone(), pol, Options{N: 4})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Cost.Total() != 0 {
			t.Fatalf("%s: cost %v on colorless instance", pol.Name(), res.Cost)
		}
	}
	if res, err := Solve(inst.Clone(), 8); err != nil || res.Cost.Total() != 0 {
		t.Fatalf("Solve on colorless: %v, %v", res, err)
	}
	st, err := NewStream(NewDLRUEDF(), StreamConfig{N: 4, Delta: 1, Delays: nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(nil); err != nil {
		t.Fatal(err)
	}
	if st.Cost().Total() != 0 {
		t.Fatalf("stream cost %v", st.Cost())
	}
}

// TestSingleRoundSingleJob: the smallest non-trivial instance behaves
// sensibly across resource counts.
func TestSingleRoundSingleJob(t *testing.T) {
	for _, n := range []int{4, 8, 32} {
		inst := &Instance{Delta: 1, Delays: []int{1}}
		inst.AddJobs(0, 0, 1)
		res, err := Run(inst, NewDLRUEDF(), Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		// Δ = 1 and one job with one opportunity: the policy either
		// executes it (cost Δ·reconfigs) or drops it (cost 1).
		if res.Executed+res.Dropped != 1 {
			t.Fatalf("n=%d: conservation: %v", n, res)
		}
	}
}

// TestHugeDeltaMakesEverythingIneligible: when Δ exceeds the total job
// volume, ΔLRU-EDF drops everything (Lemma 3.1's regime) and pays no
// reconfigurations at all.
func TestHugeDeltaMakesEverythingIneligible(t *testing.T) {
	inst := &Instance{Delta: 1000, Delays: []int{4, 8}}
	inst.AddJobs(0, 0, 5)
	inst.AddJobs(4, 1, 7)
	res, err := Run(inst, NewDLRUEDF(), Options{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Reconfig != 0 {
		t.Fatalf("ineligible-only instance caused reconfigurations: %v", res.Cost)
	}
	if res.Dropped != 12 {
		t.Fatalf("dropped %d, want 12", res.Dropped)
	}
}

// TestManyColorsFewSlots: more distinct colors than cache capacity never
// breaks invariants.
func TestManyColorsFewSlots(t *testing.T) {
	inst := &Instance{Delta: 1, Delays: make([]int, 64)}
	for c := range inst.Delays {
		inst.Delays[c] = 4
	}
	for r := 0; r < 32; r += 4 {
		for c := 0; c < 64; c++ {
			inst.AddJobs(r, Color(c), 1)
		}
	}
	res, err := Run(inst, NewDLRUEDF(), Options{N: 4}) // capacity: 2 distinct colors
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed+res.Dropped != inst.TotalJobs() {
		t.Fatal("conservation broken under heavy color pressure")
	}
	if res.Executed == 0 {
		t.Fatal("nothing executed despite available capacity")
	}
}
