// Adversarial: replays the paper's two appendix constructions — the
// inputs that defeat the pure-LRU and pure-EDF policies — and shows that
// the combined ΔLRU-EDF algorithm survives both.
//
// Appendix A defeats ΔLRU with a long-delay backlog that never looks
// "recent"; Appendix B defeats EDF with a staircase of long-delay colors
// that make it thrash. On both, ΔLRU-EDF stays within a small constant of
// the offline witness.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"os"

	rrs "repro"
	"repro/internal/stats"
)

func main() {
	const n = 8

	// — Appendix A: recency misleads ΔLRU —
	instA, err := rrs.AppendixA(n, 2, 6, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Appendix A input: %s (%d jobs)\n", instA.Name, instA.TotalJobs())
	tabA := stats.NewTable("Appendix A", "policy", "resources", "total", "reconfig", "drops")
	for _, run := range []struct {
		pol rrs.Policy
		n   int
	}{
		{rrs.NewDLRU(), n},
		{rrs.NewDLRUEDF(), n},
		{rrs.NewStatic(rrs.Color(n / 2)), 1}, // the paper's OFF witness: pin the long color
	} {
		res, err := rrs.Run(instA.Clone(), run.pol, rrs.Options{N: run.n})
		if err != nil {
			log.Fatal(err)
		}
		tabA.AddRow(res.Policy, run.n, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop)
	}
	if err := tabA.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// — Appendix B: deadlines mislead EDF —
	instB, err := rrs.AppendixB(n, n+1, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAppendix B input: %s (%d jobs)\n", instB.Name, instB.TotalJobs())
	tabB := stats.NewTable("Appendix B", "policy", "resources", "total", "reconfig", "drops")
	for _, pol := range []rrs.Policy{rrs.NewEDF(), rrs.NewDLRUEDF()} {
		res, err := rrs.Run(instB.Clone(), pol, rrs.Options{N: n})
		if err != nil {
			log.Fatal(err)
		}
		tabB.AddRow(res.Policy, n, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop)
	}
	if err := tabB.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
