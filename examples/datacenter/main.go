// Datacenter: a shared hosting center reallocating processors among
// services as the workload composition shifts over the day (the second
// motivating application of the paper's introduction, after Chandra et al.
// and Chase et al.). Twelve services with three SLA classes follow
// phase-shifted diurnal demand curves, so the "hot set" of services
// rotates continuously — exactly the regime where a recency-only or a
// deadline-only policy breaks down.
//
// The example also demonstrates the resource-augmentation story: the
// paper's algorithm with a growing number of processors versus a certified
// lower bound on the optimum with m = 4.
//
// Run with: go run ./examples/datacenter
package main

import (
	"log"
	"os"

	rrs "repro"
	"repro/internal/stats"
)

func main() {
	const (
		services  = 12
		delta     = 10
		dayRounds = 512
		days      = 4
		seed      = 2026
		m         = 4 // offline reference machine count
	)
	inst := rrs.DatacenterWorkload(seed, services, delta, dayRounds, days, 12)
	lb := rrs.CertifiedLowerBound(inst.Clone(), m)

	tab := stats.NewTable("shared data center: cost vs processor count",
		"processors n", "n/m", "total cost", "reconfig", "drops", "ratio vs LB(m=4)")
	for _, n := range []int{4, 8, 16, 32} {
		res, err := rrs.Solve(inst.Clone(), n)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(n, n/m, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop,
			float64(res.Cost.Total())/float64(lb))
	}
	tab.AddNote("LB(m=%d) = %d is a certified lower bound on the optimal offline cost", m, lb)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
