// Streaming: drive the scheduler one round at a time through the Stream
// API — the way a live system (a router dataplane, a cluster control
// loop) would embed this library, where arrivals only become known as
// they happen.
//
// The example simulates a control loop over a bursty two-class workload,
// prints a short live log of interesting rounds, and reconciles the
// incremental totals with a batch re-run of the same trace.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	rrs "repro"
	"repro/internal/container"
)

func main() {
	const (
		n      = 8
		delta  = 6
		rounds = 200
	)
	// Two categories: interactive (D=4) and batch (D=32).
	cfg := rrs.StreamConfig{N: n, Delta: delta, Delays: []int{4, 32}}

	st, err := rrs.NewStream(rrs.NewDLRUEDF(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic bursty source: interactive traffic in bursts,
	// batch work trickling in.
	rng := container.NewRNG(42)
	var replay []rrs.Request // keep the trace to reconcile with Run below
	// Rounds where something costly happened, kept for the report below.
	// A StepResult's slices alias buffers the Stream reuses on the next
	// Step, so anything retained must be Cloned — appending `out` directly
	// would make every saved entry silently mutate into the last round.
	var costly []rrs.StepResult
	for r := 0; r < rounds; r++ {
		var req rrs.Request
		if (r/20)%2 == 0 { // interactive burst phase
			if jobs := rng.Poisson(3); jobs > 0 {
				req = append(req, rrs.Batch{Color: 0, Count: jobs})
			}
		}
		if jobs := rng.Poisson(0.8); jobs > 0 {
			req = append(req, rrs.Batch{Color: 1, Count: jobs})
		}
		replay = append(replay, req)

		out, err := st.Step(req)
		if err != nil {
			log.Fatal(err)
		}
		if len(out.Dropped) > 0 || out.Reconfigs > 0 {
			costly = append(costly, out.Clone())
		}
	}
	for _, out := range costly[:min(10, len(costly))] {
		fmt.Printf("round %3d: executed=%d dropped=%v reconfigs=%d\n",
			out.Round, countJobs(out.Executed), out.Dropped, out.Reconfigs)
	}
	fmt.Printf("(%d costly rounds in total)\n", len(costly))
	if _, err := st.Drain(); err != nil {
		log.Fatal(err)
	}
	live := st.Result()
	fmt.Printf("\nlive totals:  %s\n", live)

	// Reconcile: replaying the recorded trace through the batch engine
	// must give identical numbers.
	inst := &rrs.Instance{Name: "streaming-trace", Delta: delta, Delays: cfg.Delays, Requests: replay}
	batch, err := rrs.Run(inst, rrs.NewDLRUEDF(), rrs.Options{N: n})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch totals: %s\n", batch)
	if batch.Cost != live.Cost {
		log.Fatalf("MISMATCH: stream %v vs batch %v", live.Cost, batch.Cost)
	}
	fmt.Println("stream and batch engines agree ✓")
}

func countJobs(bs []rrs.Batch) int {
	n := 0
	for _, b := range bs {
		n += b.Count
	}
	return n
}
