// Quickstart: build a tiny instance by hand, run the paper's algorithm and
// the baselines on it, and compare against the exact offline optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rrs "repro"
)

func main() {
	// Two categories of work sharing a pool of resources:
	//   color 0 — latency-sensitive lookups, must finish within 2 rounds;
	//   color 1 — batch analytics, tolerate 8 rounds of delay.
	// Reconfiguring a resource between categories costs Δ = 3.
	inst := &rrs.Instance{
		Name:   "quickstart",
		Delta:  3,
		Delays: []int{2, 8},
	}
	inst.AddJobs(0, 1, 10) // a backlog of 10 analytics jobs at round 0
	for t := 0; t < 24; t += 4 {
		inst.AddJobs(t, 0, 2) // a burst of 2 lookups every 4 rounds
	}

	fmt.Printf("instance %q: %d jobs over %d rounds, Δ=%d\n\n",
		inst.Name, inst.TotalJobs(), inst.NumRounds(), inst.Delta)

	// The paper's full online pipeline with n = 8 resources…
	solved, err := rrs.Solve(inst.Clone(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paper's algorithm :", solved)

	// …its core ΔLRU-EDF policy run directly, and the two flawed
	// baselines the paper analyzes.
	for _, pol := range []rrs.Policy{rrs.NewDLRUEDF(), rrs.NewDLRU(), rrs.NewEDF(), rrs.NewNever()} {
		res, err := rrs.Run(inst.Clone(), pol, rrs.Options{N: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("baseline          :", res)
	}

	// The instance is tiny, so the exact offline optimum with one
	// resource is computable by exhaustive search.
	opt, err := rrs.OptimalCost(inst.Clone(), 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact OPT (m=1 resource): %d\n", opt)
	fmt.Printf("paper's algorithm is within %.2f× of OPT while using 8× the resources\n",
		float64(solved.Cost.Total())/float64(opt))
}
