// Router: a multi-service software router on a programmable multi-core
// network processor — the motivating application from the paper's
// introduction. Packet categories in four QoS classes (voice, video, web,
// bulk) share 16 cores; each core must be configured for one category at a
// time, and packets must be processed within their class delay tolerance.
//
// The example sweeps the offered load and shows how the paper's algorithm
// trades reconfigurations against drops compared with the pure-LRU and
// pure-EDF baselines.
//
// Run with: go run ./examples/router
package main

import (
	"log"
	"os"

	rrs "repro"
	"repro/internal/stats"
)

func main() {
	const (
		cores  = 16
		delta  = 8 // reconfiguring a core costs 8 packet slots
		rounds = 4096
		seed   = 7
	)

	tab := stats.NewTable("multi-service router, 16 cores, 16 packet categories",
		"load (pkts/round)", "policy", "total cost", "reconfig", "drops", "drop rate")
	for _, load := range []float64{4, 8, 16, 24} {
		inst := rrs.RouterWorkload(seed, 4, delta, rounds, load)
		jobs := inst.TotalJobs()

		solved, err := rrs.Solve(inst.Clone(), cores)
		if err != nil {
			log.Fatal(err)
		}
		addRow(tab, load, jobs, "Solve (paper)", solved)

		for _, pol := range []rrs.Policy{rrs.NewDLRUEDF(), rrs.NewDLRU(), rrs.NewEDF()} {
			res, err := rrs.Run(inst.Clone(), pol, rrs.Options{N: cores})
			if err != nil {
				log.Fatal(err)
			}
			addRow(tab, load, jobs, res.Policy, res)
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func addRow(tab *stats.Table, load float64, jobs int, name string, res *rrs.Result) {
	tab.AddRow(load, name, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop,
		float64(res.Dropped)/float64(jobs))
}
