package rrs

import (
	"testing"

	"repro/internal/workload"
)

// TestStreamMatchesRunWithRealPolicies: the incremental Stream and the
// batch engine must agree exactly for the stateful production policies,
// not just for scripted test policies (covered in internal/sched).
func TestStreamMatchesRunWithRealPolicies(t *testing.T) {
	inst := workload.Router(17, 2, 6, 384, 5)
	makers := []func() Policy{
		func() Policy { return NewDLRUEDF() },
		func() Policy { return NewDLRUEDF(WithAdaptiveSplit()) },
		func() Policy { return NewDLRU() },
		func() Policy { return NewEDF() },
		func() Policy { return NewHysteresis(1) },
	}
	for _, mk := range makers {
		batch, err := Run(inst.Clone(), mk(), Options{N: 8})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStream(mk(), StreamConfig{N: 8, Delta: inst.Delta, Delays: inst.Delays})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < inst.NumRounds(); r++ {
			if _, err := st.Step(inst.Requests[r]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		live := st.Result()
		if live.Cost != batch.Cost || live.Executed != batch.Executed {
			t.Fatalf("%s: stream %v/%d vs batch %v/%d",
				batch.Policy, live.Cost, live.Executed, batch.Cost, batch.Executed)
		}
	}
}

// TestSolveOnAdversarialInputs: the full pipeline survives both appendix
// constructions with bounded cost relative to the witnesses.
func TestSolveOnAdversarialInputs(t *testing.T) {
	instA, err := AppendixA(8, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Solve(instA.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	offA, err := Run(instA.Clone(), NewStatic(Color(4)), Options{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(resA.Cost.Total()) > 8*float64(offA.Cost.Total()) {
		t.Fatalf("Solve on Appendix A: %d vs witness %d (ratio > 8)", resA.Cost.Total(), offA.Cost.Total())
	}

	instB, err := AppendixB(8, 9, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Solve(instB.Clone(), 8)
	if err != nil {
		t.Fatal(err)
	}
	witnessB := int64((8/2 + 1) * 9) // (n/2+1)·Δ
	if float64(resB.Cost.Total()) > 12*float64(witnessB) {
		t.Fatalf("Solve on Appendix B: %d vs witness %d (ratio > 12)", resB.Cost.Total(), witnessB)
	}
}

// TestDeterminismAcrossRuns: identical runs of every exported policy give
// identical results (the whole repository is seed-deterministic).
func TestDeterminismAcrossRuns(t *testing.T) {
	inst := workload.ZipfMix(29, 12, 4, 256, []int{2, 4, 8}, 5, 1.0)
	makers := []func() Policy{
		func() Policy { return NewDLRUEDF() },
		func() Policy { return NewDLRU() },
		func() Policy { return NewEDF() },
		func() Policy { return NewSeqEDF() },
		func() Policy { return NewGreedyPending() },
		func() Policy { return NewHysteresis(2) },
	}
	for _, mk := range makers {
		a, err := Run(inst.Clone(), mk(), Options{N: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(inst.Clone(), mk(), Options{N: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost != b.Cost || a.Executed != b.Executed {
			t.Fatalf("%s: nondeterministic (%v vs %v)", a.Policy, a.Cost, b.Cost)
		}
	}
}
